// ForkScenario: real-process crash harness - fork+exec's REAL child
// processes against a shm::ShmWorld and kills them mid-critical-section,
// so genuine whole-process death (SIGKILL, not a simulated crash step)
// exercises the recovery protocol end to end.
//
// Three pieces:
//
//   ForkScenario  child-process management: spawn(exe, args) fork+execs,
//                 kill() delivers a signal (default SIGKILL - the crash
//                 model: no atexit, no destructors, no flushing), wait()
//                 reaps and reports the exit. The parent stays the
//                 auditor.
//
//   StageBoard    the choreography channel, living IN the region: one
//                 cell per logical pid. A worker announces the stage it
//                 has reached (at-entry, in-CS, released, batch-held...)
//                 and then FREEZES, spinning on its go word; the parent
//                 awaits the stage, kills the worker exactly there (or
//                 releases it to continue). This turns "kill it somewhere
//                 around the CS" into a deterministic kill MATRIX.
//
//   CsProbe       a cross-process mutual-exclusion witness for one lock/
//                 shard: enter() FASes the owner word and counts a
//                 collision if anyone else was inside; exit() clears it.
//                 A SIGKILL'd holder leaves its id in the owner word -
//                 exactly like the lock state itself - and the recovery
//                 re-entry (same id) is recognised, so the probe also
//                 witnesses CSR across process restarts.
//
// The worker side of the choreography is tools/shm_worker.cpp; the kill
// matrix itself is tests/test_shm_fork.cpp.
#pragma once

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "shm/region.hpp"
#include "util/assert.hpp"

namespace rme::harness {

// Scoped RME_SHM_MAP_HINT: spawned children inherit the parent's
// environment (ForkScenario is fork+exec), so wrapping a spawn in a
// MapHint steers that child's attach toward a chosen base. The hint is a
// SOFT mmap hint - the attach-anywhere contract means a relocation is
// harmless - but distinct far-apart hints reliably land workers at
// distinct bases, which is exactly what the cross-ABI offset tests and
// the mismatched-bases bench arm need to exercise.
class MapHint {
 public:
  explicit MapHint(uint64_t addr) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    ::setenv("RME_SHM_MAP_HINT", buf, 1);
  }
  ~MapHint() { ::unsetenv("RME_SHM_MAP_HINT"); }
  MapHint(const MapHint&) = delete;
  MapHint& operator=(const MapHint&) = delete;
};

// ---------------------------------------------------------------------------
// StageBoard
// ---------------------------------------------------------------------------

// Worker progress stages, announced via the StageBoard. The values are
// protocol constants shared between the test binary and shm_worker.
enum class Stage : uint32_t {
  kIdle = 0,
  kClaimed = 1,    // pid slot claimed, session open, lock untouched
  kInCs = 2,       // holding the single-key lock, inside the CS
  kReleased = 3,   // released cleanly, pid slot still claimed
  kBatchHeld = 4,  // holding a multi-key batch (all shards)
  kRecovered = 5,  // restart path: recovery replayed, before clean runs
  kDone = 6,       // workload finished, about to detach cleanly
};

struct StageCell {
  std::atomic<uint32_t> stage;   // last Stage the worker announced
  std::atomic<uint32_t> go;      // parent sets 1 to release a frozen worker
  std::atomic<uint64_t> beats;   // worker liveness ticks while frozen
};

// One cell per logical pid; placed in the region (via ShmWorld's arena)
// so parent and workers see one board.
struct StageBoard {
  StageCell cells[shm::kMaxProcs];

  // --- worker side ---

  // Announce `s` and freeze until the parent sets go (or the process is
  // killed - the point of freezing). Clears go on exit so the cell is
  // reusable for the next stage.
  void freeze_at(int pid, Stage s) {
    StageCell& c = cells[pid];
    c.stage.store(static_cast<uint32_t>(s), std::memory_order_release);
    while (c.go.load(std::memory_order_acquire) == 0) {
      c.beats.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    c.go.store(0, std::memory_order_release);
  }
  // Announce without freezing.
  void announce(int pid, Stage s) {
    cells[pid].stage.store(static_cast<uint32_t>(s),
                           std::memory_order_release);
  }

  // --- parent side ---

  Stage stage_of(int pid) const {
    return static_cast<Stage>(
        cells[pid].stage.load(std::memory_order_acquire));
  }
  // Wait until the worker announces `s`; false on timeout.
  bool await(int pid, Stage s, std::chrono::milliseconds timeout =
                                   std::chrono::milliseconds(10000)) const {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (stage_of(pid) != s) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return true;
  }
  // Release a frozen worker.
  void release(int pid) {
    cells[pid].go.store(1, std::memory_order_release);
  }
};

// ---------------------------------------------------------------------------
// CsProbe
// ---------------------------------------------------------------------------

// Cross-process ME/CSR witness for one lock (or one table shard). Ids are
// 1-based (0 = empty). enter() tolerates re-entry by the SAME id - that
// is precisely the recovery CSR path after a crash inside the CS.
struct CsProbe {
  std::atomic<uint64_t> owner;       // current occupant id (0 = none)
  std::atomic<uint64_t> entries;     // completed enter()s
  std::atomic<uint64_t> collisions;  // ME violations observed

  void enter(uint64_t id) {
    const uint64_t prev = owner.exchange(id, std::memory_order_acq_rel);
    if (prev != 0 && prev != id) {
      collisions.fetch_add(1, std::memory_order_relaxed);
    }
    entries.fetch_add(1, std::memory_order_relaxed);
  }
  void exit(uint64_t id) {
    const uint64_t prev = owner.exchange(0, std::memory_order_acq_rel);
    if (prev != id && prev != 0) {
      collisions.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

// ---------------------------------------------------------------------------
// ShmKillFixture: the root object of the kill-matrix worlds - the lock
// table under test plus the choreography board and one CsProbe per
// shard. Templated on the table type so the harness stays independent of
// the api layer; tools/shm_worker.cpp and tests/test_shm_fork.cpp
// instantiate it with api::TableLock<platform::Real>.
// ---------------------------------------------------------------------------

// Per-pid cumulative session telemetry, flushed into the region by a
// worker at the end of each incarnation (cts soak roles). Region-resident
// so the auditing parent can check cross-incarnation invariants
// (handoff_rmrs <= releases) and aggregate SOAK_JSON counters without
// sharing an address space with any worker. Counters only ever grow; a
// worker killed before its flush simply contributes nothing (the audits
// are monotone, so a missing flush can never fake a violation).
struct SoakCell {
  std::atomic<uint64_t> acquires;
  std::atomic<uint64_t> releases;
  std::atomic<uint64_t> handoff_rmrs;
  std::atomic<uint64_t> timeouts;
  std::atomic<uint64_t> sheds;
  std::atomic<uint64_t> crash_recoveries;
  std::atomic<uint64_t> flushes;  // completed incarnations that reported
};

template <class Table>
struct ShmKillFixture {
  Table table;
  StageBoard board{};
  CsProbe probes[shm::kMaxProcs]{};  // indexed by shard
  SoakCell soak[shm::kMaxProcs]{};   // indexed by logical pid
  std::atomic<uint64_t> soak_takeovers{};  // verified dead-slot takeovers

  // Cross-process grant log for the park-handoff tests: a worker that
  // completes an acquisition draws a sequence number and records it
  // under its pid, so the auditing parent can assert waiters were
  // granted in lock-queue (park) order.
  std::atomic<uint64_t> grant_seq{};
  std::atomic<uint64_t> grant_at[shm::kMaxProcs]{};

  template <class Env>
  ShmKillFixture(Env& env, int shards, int ports_per_shard, int npids)
      : table(env, shards, ports_per_shard, npids) {
    RME_ASSERT(shards <= shm::kMaxProcs, "ShmKillFixture: too many shards");
  }

  void log_grant(int pid) {
    grant_at[pid].store(grant_seq.fetch_add(1, std::memory_order_acq_rel) + 1,
                        std::memory_order_release);
  }

  // Worker-side: fold one incarnation's SessionStats into the pid's
  // cumulative region-resident cell. Template so the harness layer needs
  // no svc include; any struct with these fields works.
  template <class Stats>
  void flush_soak(int pid, const Stats& st) {
    SoakCell& c = soak[pid];
    c.acquires.fetch_add(st.acquires, std::memory_order_relaxed);
    c.releases.fetch_add(st.releases, std::memory_order_relaxed);
    c.handoff_rmrs.fetch_add(st.handoff_rmrs, std::memory_order_relaxed);
    c.timeouts.fetch_add(st.timeouts, std::memory_order_relaxed);
    c.sheds.fetch_add(st.sheds, std::memory_order_relaxed);
    c.crash_recoveries.fetch_add(st.crash_recoveries,
                                 std::memory_order_relaxed);
    c.flushes.fetch_add(1, std::memory_order_acq_rel);
  }
};

// ---------------------------------------------------------------------------
// ForkScenario
// ---------------------------------------------------------------------------

class ForkScenario {
 public:
  struct Child {
    pid_t os_pid = -1;
    bool reaped = false;
    int status = 0;  // waitpid status once reaped
  };

  ~ForkScenario() {
    // Never leave stray children: kill and reap anything unreaped.
    for (size_t i = 0; i < children_.size(); ++i) {
      if (!children_[i].reaped) {
        ::kill(children_[i].os_pid, SIGKILL);
        (void)wait_child(static_cast<int>(i));
      }
    }
  }

  // fork+exec `exe argv...`. Returns the child index. When `stderr_path`
  // is non-empty the child's stderr is redirected (truncating) into that
  // file - the capture channel of the cts BadNews scanner: whatever the
  // worker's death left on stderr (assert text, ShmError reports,
  // sanitizer output) survives the process and is scanned after the reap.
  int spawn(const std::string& exe, const std::vector<std::string>& args,
            const std::string& stderr_path = {}) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(exe.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    RME_ASSERT(pid >= 0, "ForkScenario: fork failed");
    if (pid == 0) {
      if (!stderr_path.empty()) {
        const int fd = ::open(stderr_path.c_str(),
                              O_CREAT | O_WRONLY | O_TRUNC, 0644);
        if (fd >= 0) {
          ::dup2(fd, 2);
          if (fd != 2) ::close(fd);
        }
      }
      ::execv(exe.c_str(), argv.data());
      // exec failed: die without running the parent's atexit/destructors.
      ::_exit(127);
    }
    children_.push_back(Child{pid, false, 0});
    return static_cast<int>(children_.size()) - 1;
  }

  pid_t os_pid(int idx) const { return children_[static_cast<size_t>(idx)].os_pid; }

  // Deliver `sig` (default: the crash model - SIGKILL, no cleanup runs).
  void kill_child(int idx, int sig = SIGKILL) {
    ::kill(children_[static_cast<size_t>(idx)].os_pid, sig);
  }

  // Reap and return the waitpid status.
  int wait_child(int idx) {
    Child& c = children_[static_cast<size_t>(idx)];
    if (!c.reaped) {
      ::waitpid(c.os_pid, &c.status, 0);
      c.reaped = true;
    }
    return c.status;
  }

  // True iff the child exited normally with code 0.
  bool exited_clean(int idx) {
    const int st = wait_child(idx);
    return WIFEXITED(st) && WEXITSTATUS(st) == 0;
  }
  // True iff the child died by `sig` (the expected fate of a killed
  // worker).
  bool died_by(int idx, int sig) {
    const int st = wait_child(idx);
    return WIFSIGNALED(st) && WTERMSIG(st) == sig;
  }

 private:
  std::vector<Child> children_;
};

}  // namespace rme::harness

// Public facade of the library.
//
//   rme::RecoverableMutex<P>  - n-process recoverable mutex with
//                               O((1+f) log n / log log n) RMR per
//                               super-passage (the paper's headline result,
//                               Theorem 3). Thin veneer over
//                               core::ArbitrationTree.
//
//   rme::FlatRecoverableMutex<P> - the k-ported single-node lock
//                               (Theorem 2): O(1) RMR crash-free passages,
//                               O(f k) with f crashes. Preferable when the
//                               port count is small and crashes are rare.
//
// Both expose the same contract: pick a pid/port in your Remainder
// section, call lock(); the critical section runs; call unlock(). The
// recovery protocol after a crash at ANY point is to call lock() again -
// if the crash happened inside the CS you re-enter immediately (wait-free
// CSR); if it happened inside Exit, lock() completes the exit and runs a
// fresh passage.
#pragma once

#include "core/arbitration_tree.hpp"
#include "core/rme_lock.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"

namespace rme {

template <class P = platform::Real>
class RecoverableMutex {
 public:
  using Env = typename P::Env;
  using Proc = platform::Process<P>;
  using Options = typename core::ArbitrationTree<P>::Options;

  RecoverableMutex(Env& env, int nprocs, Options opt = {})
      : tree_(env, nprocs, opt) {}

  void lock(Proc& h, int pid) { tree_.lock(h, pid); }
  void unlock(Proc& h, int pid) { tree_.unlock(h, pid); }

  int degree() const { return tree_.degree(); }
  int height() const { return tree_.height(); }
  core::ArbitrationTree<P>& tree() { return tree_; }

  // RAII guard for crash-free (non-simulated) use.
  class Guard {
   public:
    Guard(RecoverableMutex& m, Proc& h, int pid) : m_(m), h_(h), pid_(pid) {
      m_.lock(h_, pid_);
    }
    ~Guard() { m_.unlock(h_, pid_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    RecoverableMutex& m_;
    Proc& h_;
    int pid_;
  };

 private:
  core::ArbitrationTree<P> tree_;
};

template <class P = platform::Real>
using FlatRecoverableMutex = core::RmeLock<P>;

}  // namespace rme

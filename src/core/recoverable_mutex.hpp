// Public facade of the library.
//
//   rme::RecoverableMutex<P>  - n-process recoverable mutex with
//                               O((1+f) log n / log log n) RMR per
//                               super-passage (the paper's headline result,
//                               Theorem 3). Thin veneer over
//                               core::ArbitrationTree.
//
//   rme::FlatRecoverableMutex<P> - the k-ported single-node lock
//                               (Theorem 2): O(1) RMR crash-free passages,
//                               O(f k) with f crashes. Preferable when the
//                               port count is small and crashes are rare.
//
// Both expose the same contract: pick a pid/port in your Remainder
// section, call acquire(); the critical section runs; call release(). The
// recovery protocol after a crash at ANY point is to call acquire() again -
// if the crash happened inside the CS you re-enter immediately (wait-free
// CSR); if it happened inside Exit, acquire() completes the exit and runs
// a fresh passage.
//
// RecoverableMutex conforms to the rme::api lock concept directly (it is
// a registry entry, name "rme_tree"): acquire/release/recover are the
// canonical verbs; lock/unlock survive as aliases for the paper's
// Try/Exit vocabulary.
//
// Layering note: api/lock_concept.hpp and api/guard.hpp are vocabulary
// headers depending only on platform/ (never on core), so this facade may
// use them without a cycle; the api layers that sit ABOVE core are
// adapters.hpp and registry.hpp, which this header must not include.
#pragma once

#include "api/guard.hpp"
#include "api/lock_concept.hpp"
#include "core/arbitration_tree.hpp"
#include "core/rme_lock.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"

namespace rme {

template <class P = platform::Real>
class RecoverableMutex {
 public:
  using Platform = P;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;
  using Options = typename core::ArbitrationTree<P>::Options;

  static constexpr const char* kName = "rme_tree";
  static constexpr api::Traits kTraits{api::Addressing::kPid,
                                       /*recoverable=*/true,
                                       api::Rmw::kFasOnly,
                                       /*max_processes=*/0};

  RecoverableMutex(Env& env, int nprocs, Options opt = {})
      : tree_(env, nprocs, opt) {}

  void acquire(Proc& h, int pid) { tree_.lock(h, pid); }
  void release(Proc& h, int pid) { tree_.unlock(h, pid); }
  // Finish an interrupted super-passage (no-op passage when idle).
  void recover(Proc& h, int pid) {
    tree_.lock(h, pid);
    tree_.unlock(h, pid);
  }

  // The paper's Try/Exit vocabulary, kept as aliases.
  void lock(Proc& h, int pid) { acquire(h, pid); }
  void unlock(Proc& h, int pid) { release(h, pid); }

  int degree() const { return tree_.degree(); }
  int height() const { return tree_.height(); }
  core::ArbitrationTree<P>& tree() { return tree_; }

  // The bespoke RAII guard this class used to carry (and the
  // `RecoverableMutex::Guard` alias that bridged one release) is gone:
  // use api::Guard<RecoverableMutex<P>> directly, or - preferred - mint
  // guards from an rme::svc::Session (svc/svc.hpp).

 private:
  core::ArbitrationTree<P> tree_;
};

template <class P = platform::Real>
using FlatRecoverableMutex = core::RmeLock<P>;

}  // namespace rme

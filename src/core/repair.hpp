// Path graph for queue repair (paper Figure 4, Lines 37-41).
//
// The repairing process scans the Node array and builds a directed graph
// whose vertices are queue nodes and whose edges point from a node to its
// predecessor. The algorithm's invariant (Conditions 23, 27) guarantees the
// graph is a disjoint union of simple directed paths: every vertex has at
// most one outgoing edge (its Pred) and at most one incoming edge (two
// nodes share a real-node predecessor only transiently, excluded by the
// mutual exclusion of repair). This helper materialises the maximal paths.
//
// Orientation matches the paper: an edge (v, u) means u = v.Pred, a path
// runs tail-to-head, start(sigma) is the vertex nobody points to (queue
// tail side), end(sigma) is the vertex with no outgoing edge (queue head
// side).
//
// Purely local computation: O(k) time and space, no shared-memory accesses
// (the "shallow exploration" of Section 1.5 that cuts GH's O(n^2) local
// work and O(n)-word cache requirement down to O(n) work and O(1) cache).
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace rme::core {

template <class Node>
class PathGraph {
 public:
  struct Path {
    Node* start = nullptr;  // tail-most vertex (in-degree 0)
    Node* end = nullptr;    // head-most vertex (out-degree 0)
    int length = 0;
  };

  explicit PathGraph(int max_vertices) {
    verts_.reserve(static_cast<size_t>(max_vertices));
    out_.reserve(static_cast<size_t>(max_vertices));
    in_deg_.reserve(static_cast<size_t>(max_vertices));
  }

  // Add a vertex with no (known) outgoing edge. Idempotent.
  int add_vertex(Node* v) {
    const int id = find(v);
    if (id >= 0) return id;
    verts_.push_back(v);
    out_.push_back(-1);
    in_deg_.push_back(0);
    return static_cast<int>(verts_.size()) - 1;
  }

  // Add edge v -> u (u = v.Pred). Adds both vertices as needed. A second
  // edge out of v is a fatal invariant violation.
  void add_edge(Node* v, Node* u) {
    const int vi = add_vertex(v);
    const int ui = add_vertex(u);
    RME_ASSERT(out_[static_cast<size_t>(vi)] == -1,
               "PathGraph: vertex with two predecessors");
    out_[static_cast<size_t>(vi)] = ui;
    ++in_deg_[static_cast<size_t>(ui)];
  }

  bool contains(Node* v) const { return find(v) >= 0; }

  // Compute the set of maximal paths (paper Line 39).
  void compute() {
    paths_.clear();
    path_of_.assign(verts_.size(), -1);
    for (size_t i = 0; i < verts_.size(); ++i) {
      if (in_deg_[i] != 0) continue;  // not a path start
      Path p;
      p.start = verts_[i];
      int cur = static_cast<int>(i);
      int steps = 0;
      for (;;) {
        path_of_[static_cast<size_t>(cur)] =
            static_cast<int>(paths_.size());
        ++steps;
        RME_ASSERT(steps <= static_cast<int>(verts_.size()),
                   "PathGraph: cycle detected (invariant violation)");
        const int nxt = out_[static_cast<size_t>(cur)];
        if (nxt < 0) {
          p.end = verts_[static_cast<size_t>(cur)];
          break;
        }
        cur = nxt;
      }
      p.length = steps;
      paths_.push_back(p);
    }
    // Every vertex must lie on exactly one maximal path (DAG of paths).
    for (size_t i = 0; i < verts_.size(); ++i) {
      RME_ASSERT(path_of_[i] >= 0,
                 "PathGraph: vertex on no path (cycle?)");
    }
  }

  // Path containing v; compute() must have run. Null if v is unknown.
  const Path* path_of(Node* v) const {
    const int id = find(v);
    if (id < 0) return nullptr;
    return &paths_[static_cast<size_t>(path_of_[static_cast<size_t>(id)])];
  }

  const std::vector<Path>& paths() const { return paths_; }
  size_t vertex_count() const { return verts_.size(); }

 private:
  int find(Node* v) const {
    for (size_t i = 0; i < verts_.size(); ++i) {
      if (verts_[i] == v) return static_cast<int>(i);
    }
    return -1;
  }

  std::vector<Node*> verts_;
  std::vector<int> out_;     // index of pred vertex, -1 if none
  std::vector<int> in_deg_;
  std::vector<Path> paths_;
  std::vector<int> path_of_;
};

}  // namespace rme::core

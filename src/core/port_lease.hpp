// PortLease: a crash-recoverable dynamic port manager.
//
// The paper's port model (Section 3) is static: a process picks a port in
// its Remainder section and no two processes may use one port
// concurrently. This component makes the pick dynamic while preserving
// that contract across crashes, using only the primitives the paper's
// lock itself uses (reads, writes, FAS) - no CAS.
//
// Layout (all cells in NVM, i.e. crash-surviving platform atomics):
//
//   slots[k]   the free pool. Slot values are port numbers or kEmptySlot.
//              Initially slot i holds port i. Ports move in and out of
//              slots exclusively by FAS (exchange), so port numbers behave
//              like conserved tokens: an exchange that returns a port has
//              removed it from the pool atomically, and an exchange that
//              deposits a port has published it atomically. Two processes
//              can therefore never obtain the same port - the uniqueness
//              argument needs no locks and no CAS.
//
//   lease[pid] the per-process persisted lease word (DSM: in pid's own
//              partition, so the recovery probe is a local read). Holds
//              the port held by pid, or kNoLease.
//
// acquire(pid):  1. if lease[pid] != kNoLease, return it - this is the
//                   whole recovery protocol: a process that crashed
//                   anywhere in its super-passage re-finds exactly the
//                   port it held, then re-runs the lock's Try section,
//                   which is the paper's recovery code.
//                2. otherwise sweep the slots from a pid-dependent start
//                   (reads first; FAS only on a slot that was seen
//                   non-empty), write the claimed port to lease[pid], and
//                   return it. Blocks (sweeping) while all ports are out.
//
// release(pid): clear lease[pid] FIRST, then deposit the port back into
//              an empty slot. A deposit that races with another depositor
//              may swap out the other port; the displaced port is simply
//              carried on and deposited in the next empty slot (token
//              conservation again).
//
// Crash windows (deliberate, in the spirit of the paper's own crashed-FAS
// analysis): a crash between a slot FAS and the adjacent lease write can
// LEAK a port - the port is then in no slot and no lease - but can never
// duplicate one. Mutual exclusion is therefore never at risk; only
// capacity decays, and scavenge() rebuilds the pool from the lease words
// when the caller can guarantee quiescence (no acquire/release in
// flight), e.g. after joining threads or between workload phases.
//
// scavenge() VERIFIES that quiescence claim instead of trusting it: each
// pid keeps a seqlock-style epoch word (odd = a claim/release is in
// flight, so a port may exist only in that process's registers), bumped
// with plain pid-local reads and writes - the FAS-only instruction budget
// is untouched. scavenge() snapshots the epochs, scans, then re-validates;
// any in-flight or intervening operation makes it REFUSE (return
// kScavengeRefused) rather than risk depositing a duplicate of a port a
// live process is holding. A pid that crashed mid-operation leaves its
// epoch odd until its recovery re-runs the operation, so scavenge also
// refuses while a crashed process has not yet recovered.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rme_lock.hpp"
#include "nvm/seq.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "util/assert.hpp"

namespace rme::core {

inline constexpr int kNoLease = -1;

// scavenge() result when the pool was observably not quiescent.
inline constexpr int kScavengeRefused = -1;

template <class P>
class PortLease {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;

  static constexpr int kEmptySlot = -1;

  PortLease(Env& env, int ports, int npids) : ports_(ports), npids_(npids) {
    RME_ASSERT(ports >= 1, "PortLease: need >= 1 port");
    RME_ASSERT(npids >= 1, "PortLease: need >= 1 pid");
    // Seq-backed (arena-aware): slots, leases and epochs are the words
    // cross-process recovery reads, so shm worlds place them in the region.
    slots_.reset(env.arena, static_cast<size_t>(ports));
    lease_.reset(env.arena, static_cast<size_t>(npids));
    epoch_.reset(env.arena, static_cast<size_t>(npids));
    for (int s = 0; s < ports; ++s) {
      slots_[static_cast<size_t>(s)].attach(env, rmr::kNoOwner);
      slots_[static_cast<size_t>(s)].init(s);  // pool starts full
    }
    for (int pid = 0; pid < npids; ++pid) {
      lease_[static_cast<size_t>(pid)].attach(env, pid);  // local on DSM
      lease_[static_cast<size_t>(pid)].init(kNoLease);
      epoch_[static_cast<size_t>(pid)].attach(env, pid);  // local on DSM
      epoch_[static_cast<size_t>(pid)].init(0);
    }
    scavenging_.attach(env, rmr::kNoOwner);
    scavenging_.init(0);
  }

  // Returns the pid's port, re-finding a persisted lease after a crash or
  // claiming a free port otherwise. Blocks while every port is leased.
  int acquire(Ctx& ctx, int pid) {
    check_pid(pid);
    const int held = lease_[static_cast<size_t>(pid)].load(ctx);
    if (held != kNoLease) {
      // Crash recovery: same port, same lock state. A crash between the
      // lease store and op_end strands the epoch odd; the persisted lease
      // proves no port lives only in registers, so normalise it here.
      op_end(ctx, pid);
      return held;
    }
    platform::Waiter wtr;
    for (;;) {
      const int port = try_claim(ctx, pid);
      if (port != kNoLease) return port;
      wtr.pause(ctx, this);  // pool empty: sweep again (slot loads keep
                             // the deterministic scheduler cycling)
    }
  }

  // One sweep over the slots; kNoLease if every slot was empty.
  int try_claim(Ctx& ctx, int pid) {
    check_pid(pid);
    op_begin(ctx, pid);
    const int start = static_cast<int>(mix(static_cast<uint64_t>(pid)) %
                                       static_cast<uint64_t>(ports_));
    for (int i = 0; i < ports_; ++i) {
      auto& slot = slots_[static_cast<size_t>((start + i) % ports_)];
      if (slot.load(ctx) == kEmptySlot) continue;  // cheap probe first
      const int got = slot.exchange(ctx, kEmptySlot);
      if (got == kEmptySlot) continue;  // lost the race
      // Port in hand. Persist the lease; a crash before this store leaks
      // the port (see header comment) but cannot duplicate it.
      lease_[static_cast<size_t>(pid)].store(ctx, got);
      op_end(ctx, pid);
      return got;
    }
    op_end(ctx, pid);
    return kNoLease;
  }

  // The port currently leased by pid, or kNoLease. Local on DSM.
  int held(Ctx& ctx, int pid) const {
    check_pid(pid);
    return lease_[static_cast<size_t>(pid)].load(ctx);
  }

  // Idempotent: releasing without a lease is a no-op (so recovery code can
  // call it unconditionally).
  void release(Ctx& ctx, int pid) {
    check_pid(pid);
    const int port = lease_[static_cast<size_t>(pid)].load(ctx);
    if (port == kNoLease) return;
    op_begin(ctx, pid);
    // Clear the lease BEFORE the deposit: a crash in between leaks the
    // port, but the reverse order could let this pid recover a port
    // another process has meanwhile claimed from the pool.
    lease_[static_cast<size_t>(pid)].store(ctx, kNoLease);
    deposit(ctx, port);
    op_end(ctx, pid);
  }

  // Rebuild the pool from ground truth. Requires quiescence (no
  // acquire/release in flight anywhere: a port held only in a live
  // process's registers would be misread as leaked and DUPLICATED), and
  // verifies it via the per-pid epoch words: returns kScavengeRefused -
  // having deposited nothing - when any operation was in flight at the
  // snapshot or ran during the scan. Otherwise returns the number of
  // leaked ports recovered.
  int scavenge(Ctx& ctx) {
    // One scavenger at a time: two concurrent scans could each deem the
    // same port leaked and both deposit it - a duplication. FAS-claim a
    // guard word; a rival scavenge in flight is itself a quiescence
    // violation, so refuse. (A crash inside scavenge leaves the guard
    // held and every later call refused - conservative: capacity decays
    // but duplication stays impossible; quiesce-and-rebuild is the
    // operator remedy, as for any other non-quiescent state.)
    if (scavenging_.exchange(ctx, 1) != 0) return kScavengeRefused;
    const int result = scavenge_locked(ctx);
    scavenging_.store(ctx, 0);
    return result;
  }

  // Declare, from `pid`'s own recovery path, that none of its
  // claim/release operations is in flight anywhere: clears the odd epoch
  // bit a crash mid-operation leaves behind (which otherwise makes
  // scavenge() refuse until the pid claims again). Never moves ports.
  // Callers: recovery code only - a live concurrent operation by this
  // pid would invalidate the declaration.
  void quiesce(Ctx& ctx, int pid) {
    check_pid(pid);
    op_end(ctx, pid);
  }

 private:
  int scavenge_locked(Ctx& ctx) {
    // Snapshot: every epoch must be even (no claim/release mid-flight).
    std::vector<uint64_t> before(static_cast<size_t>(npids_));
    for (int pid = 0; pid < npids_; ++pid) {
      const uint64_t e = epoch_[static_cast<size_t>(pid)].load(ctx);
      if ((e & 1) != 0) return kScavengeRefused;
      before[static_cast<size_t>(pid)] = e;
    }
    std::vector<bool> seen(static_cast<size_t>(ports_), false);
    for (int s = 0; s < ports_; ++s) {
      const int v = slots_[static_cast<size_t>(s)].load(ctx);
      if (v != kEmptySlot) seen[static_cast<size_t>(v)] = true;
    }
    for (int pid = 0; pid < npids_; ++pid) {
      const int v = lease_[static_cast<size_t>(pid)].load(ctx);
      if (v != kNoLease) seen[static_cast<size_t>(v)] = true;
    }
    // Validate: the scan is only trustworthy if no operation ran while it
    // was taken (seqlock read protocol).
    for (int pid = 0; pid < npids_; ++pid) {
      if (epoch_[static_cast<size_t>(pid)].load(ctx) !=
          before[static_cast<size_t>(pid)]) {
        return kScavengeRefused;
      }
    }
    int recovered = 0;
    for (int port = 0; port < ports_; ++port) {
      if (!seen[static_cast<size_t>(port)]) {
        deposit(ctx, port);
        ++recovered;
      }
    }
    return recovered;
  }

 public:
  int ports() const { return ports_; }
  int npids() const { return npids_; }

  // Number of ports currently in the pool (racy snapshot; exact under
  // quiescence). Tests use it to assert leak accounting.
  int free_ports(Ctx& ctx) const {
    int n = 0;
    for (int s = 0; s < ports_; ++s) {
      if (slots_[static_cast<size_t>(s)].load(ctx) != kEmptySlot) ++n;
    }
    return n;
  }

 private:
  // Seqlock writer protocol around the windows where a port can live only
  // in this process's registers. Single-writer (pid-local) cells, plain
  // reads/writes only; seq_cst so the epoch transition is ordered against
  // the slot/lease operations it brackets. Re-entry after a crash finds
  // the epoch odd and keeps it odd (while still bumping it, so a
  // concurrent scavenge scan is invalidated either way); only a cleanly
  // completed operation returns it to even.
  void op_begin(Ctx& ctx, int pid) {
    auto& e = epoch_[static_cast<size_t>(pid)];
    const uint64_t v = e.load(ctx, std::memory_order_seq_cst);
    e.store(ctx, v + 1 + (v & 1), std::memory_order_seq_cst);  // -> odd
  }
  void op_end(Ctx& ctx, int pid) {
    auto& e = epoch_[static_cast<size_t>(pid)];
    const uint64_t v = e.load(ctx, std::memory_order_seq_cst);
    e.store(ctx, v + (v & 1), std::memory_order_seq_cst);  // -> even
  }

  void deposit(Ctx& ctx, int port) {
    // Swap the port into the first slot observed empty. If the FAS
    // displaces a concurrently-deposited port, carry the displaced port
    // forward - conservation keeps this loop terminating: there are at
    // most `ports_` tokens for `ports_` slots.
    platform::Waiter wtr;
    for (;;) {
      for (int i = 0; i < ports_; ++i) {
        auto& slot = slots_[static_cast<size_t>(i)];
        if (slot.load(ctx) != kEmptySlot) continue;
        const int displaced = slot.exchange(ctx, port);
        if (displaced == kEmptySlot) return;
        port = displaced;
      }
      wtr.pause(ctx, this);
    }
  }

  void check_pid(int pid) const {
    RME_ASSERT(pid >= 0 && pid < npids_, "PortLease: bad pid");
  }

  static uint64_t mix(uint64_t x) {  // splitmix64 finaliser
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  int ports_;
  int npids_;
  nvm::Seq<typename P::template Atomic<int>> slots_;
  nvm::Seq<typename P::template Atomic<int>> lease_;
  nvm::Seq<typename P::template Atomic<uint64_t>> epoch_;
  typename P::template Atomic<int> scavenging_;  // scavenge mutual exclusion
};

// ---------------------------------------------------------------------------
// RecoverableMutexFacade: RmeLock with transparent port leasing.
//
// Callers present only their pid; the facade leases a port on lock() and
// returns it on unlock(). With ports < npids the lock structure stays
// small and acquire() blocks while all ports are out - the production
// shape where a k-ported lock serves many clients.
//
// Recovery contract is unchanged: after a crash anywhere, call lock(pid)
// again. The persisted lease re-binds the process to the port of its
// interrupted super-passage and the lock's Try section does the rest
// (wait-free CS re-entry included).
// ---------------------------------------------------------------------------
template <class P, class LockT = RmeLock<P>>
class RecoverableMutexFacade {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  struct Options {
    typename LockT::Options lock{};
  };

  RecoverableMutexFacade(Env& env, int ports, int npids, Options opt = {})
      : lock_(env, ports, opt.lock), lease_(env, ports, npids) {}

  void lock(Proc& h, int pid) {
    const int port = lease_.acquire(h.ctx, pid);
    lock_.lock(h, port);
  }

  void unlock(Proc& h, int pid) {
    const int port = lease_.held(h.ctx, pid);
    RME_ASSERT(port != kNoLease, "facade unlock without a lease");
    lock_.unlock(h, port);
    lease_.release(h.ctx, pid);
  }

  LockT& raw_lock() { return lock_; }
  PortLease<P>& lease() { return lease_; }
  int ports() const { return lease_.ports(); }

 private:
  LockT lock_;
  PortLease<P> lease_;
};

}  // namespace rme::core

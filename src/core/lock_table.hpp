// RecoverableLockTable: many independent recoverable locks behind one
// key-addressed API - the first many-lock workload shape on the road from
// the paper's single k-ported lock to a production service.
//
// Structure: N shards, each a full RmeLock plus its own PortLease pool.
// Keys map to shards by striped hashing (splitmix64), so a KV-style
// workload spreads across shards and the per-shard port pools stay small:
// with `ports_per_shard < npids` the memory is O(shards * ports), not
// O(shards * clients), and lock() blocks in the lease sweep while a
// shard's pool is exhausted.
//
// Crash recovery composes from the layers below:
//   * shard_of[pid] (persisted, pid's DSM partition) records which shard
//     the pid's in-flight super-passage targets, written BEFORE the port
//     is leased (an intent record).
//   * the shard's PortLease re-binds a recovering pid to the port of its
//     interrupted passage; the shard's RmeLock Try section is the paper's
//     recovery code, including wait-free CS re-entry after a crash in the
//     critical section.
//
// Recovery protocol: call lock(pid, key) again with the SAME key the
// interrupted operation targeted (idempotent redo logs make this natural;
// see examples/recoverable_kv_log.cpp). If the new key maps elsewhere,
// lock() first finishes the stale super-passage - re-entering and exiting
// the old shard's critical section - via recover(); pass a visitor to
// recover() when application state must be repaired inside that CS.
//
// Multi-key transactions: lock_batch/unlock_batch hold ALL shards
// guarding a key set at once via sorted two-phase locking (deadlock-free
// by construction); a persisted per-pid shard bitmask lets recover_batch
// replay partially-held batches after a crash. See the batch section
// below and rme::svc::BatchGuard for the RAII surface.
#pragma once

#include <cstdint>
#include <functional>

#include "core/port_lease.hpp"
#include "core/rme_lock.hpp"
#include "nvm/seq.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "util/assert.hpp"

namespace rme::core {

template <class P, class LockT = RmeLock<P>>
class RecoverableLockTable {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  static constexpr int kNoShard = -1;

  struct Options {
    typename LockT::Options lock{};
  };

  RecoverableLockTable(Env& env, int shards, int ports_per_shard, int npids,
                       Options opt = {})
      : npids_(npids) {
    RME_ASSERT(shards >= 1, "LockTable: need >= 1 shard");
    // Seq-backed (arena-aware): shards and the persisted per-pid intent
    // words are exactly the state cross-process sessions share, so shm
    // worlds place the whole table in the region.
    shards_.reset(env.arena, static_cast<size_t>(shards),
                  [&](void* mem, size_t) {
                    ::new (mem) Shard(env, ports_per_shard, npids, opt);
                  });
    shard_of_.reset(env.arena, static_cast<size_t>(npids));
    batch_mask_.reset(env.arena, static_cast<size_t>(npids));
    for (int pid = 0; pid < npids; ++pid) {
      shard_of_[static_cast<size_t>(pid)].attach(env, pid);  // local on DSM
      shard_of_[static_cast<size_t>(pid)].init(kNoShard);
      batch_mask_[static_cast<size_t>(pid)].attach(env, pid);
      batch_mask_[static_cast<size_t>(pid)].init(0);
    }
  }

  int shards() const { return static_cast<int>(shards_.size()); }
  int shard_for_key(uint64_t key) const {
    return static_cast<int>(mix(key) % static_cast<uint64_t>(shards_.size()));
  }

  // Acquire the lock guarding `key`. Returns the shard index (stable for
  // the key) so callers can address per-shard state.
  int lock(Proc& h, int pid, uint64_t key) {
    check_pid(pid);
    const int target = shard_for_key(key);
    if (batch_mask_[static_cast<size_t>(pid)].load(h.ctx) != 0) {
      // A crashed batch super-passage still owns ports: replay it first.
      recover_batch(h, pid);
    }
    const int stale = shard_of_[static_cast<size_t>(pid)].load(h.ctx);
    if (stale != kNoShard && stale != target) {
      // A previous super-passage (interrupted by a crash, then retried
      // under a different key) still owns a port elsewhere: finish it.
      recover(h, pid);
    }
    // Intent first: a crash after this store but before the lease is
    // claimed leaves a harmless record that recover() clears.
    shard_of_[static_cast<size_t>(pid)].store(h.ctx, target);
    Shard& sh = shards_[static_cast<size_t>(target)];
    // Park under the SHARD lock's key: a parking policy's waiters are
    // then woken by releases of this shard, not of the whole table.
    platform::WaitSiteScope site(h.ctx, &sh.lock);
    const int port = sh.lease.acquire(h.ctx, pid);
    sh.lock.lock(h, port);
    return target;
  }

  // Bounded single attempt on the shard guarding `key`: one lease sweep
  // plus a busy probe. Returns the shard index on success, kNoShard when
  // the acquisition would block. The probe exploits the lease discipline
  // (a lease is held for the ENTIRE passage, Try through Exit, and only
  // released after unlock): if after claiming our own port every other
  // port of the shard is back in the pool, nobody else is anywhere in
  // the shard's lock, so the enqueue below runs uncontended. A rival
  // claiming concurrently can still slip in between probe and enqueue -
  // the attempt then blocks behind at most that rival's passage - so
  // this is a bounded attempt in expectation, not a hard wait-freedom
  // guarantee (the paper's lock has no abandonable Try section: once the
  // FAS on Tail is issued, the process is committed to the queue).
  int try_lock(Proc& h, int pid, uint64_t key) {
    check_pid(pid);
    if (batch_mask_[static_cast<size_t>(pid)].load(h.ctx) != 0) {
      recover_batch(h, pid);  // replay a crashed batch first
    }
    const int target = shard_for_key(key);
    const int stale = shard_of_[static_cast<size_t>(pid)].load(h.ctx);
    if (stale != kNoShard && stale != target) {
      recover(h, pid);  // finish a crashed single-key passage first
    }
    // Intent first, exactly like lock(): a crash between this store and
    // the outcome leaves a record recover() clears (quiesce arm when the
    // lease was never claimed, replay arm when it was).
    shard_of_[static_cast<size_t>(pid)].store(h.ctx, target);
    Shard& sh = shards_[static_cast<size_t>(target)];
    if (try_enter_shard(h, pid, sh) == kNoLease) {
      shard_of_[static_cast<size_t>(pid)].store(h.ctx, kNoShard);
      return kNoShard;
    }
    return target;
  }

  void unlock(Proc& h, int pid) {
    check_pid(pid);
    const int s = shard_of_[static_cast<size_t>(pid)].load(h.ctx);
    RME_ASSERT(s != kNoShard, "LockTable: unlock without a shard");
    Shard& sh = shards_[static_cast<size_t>(s)];
    const int port = sh.lease.held(h.ctx, pid);
    RME_ASSERT(port != kNoLease, "LockTable: unlock without a lease");
    // The shard unlock's CS signal records the successor's spin cell as
    // ctx.wake_hint (core/rme_lock.hpp L28): the svc release hooks that
    // follow use it to wake exactly the next-in-queue pid's wait word on
    // a region FutexLot.
    sh.lock.unlock(h, port);
    sh.lease.release(h.ctx, pid);
    // Cleared last: a crash before this store is caught by the
    // lease-not-held check in recover().
    shard_of_[static_cast<size_t>(pid)].store(h.ctx, kNoShard);
  }

  // -------------------------------------------------------------------------
  // Batch acquisition: hold the locks of ALL shards guarding `keys` at
  // once, crash-consistently - the multi-key transaction shape (move
  // between accounts, multi-row update). Deadlock-free by construction:
  // every batch acquires its shards in ascending shard order (sorted
  // two-phase locking), so hold-and-wait cycles cannot form, even when a
  // shard's port pool is exhausted and the lease sweep blocks.
  //
  // Crash protocol: the full target-shard set is persisted as a bitmask
  // in the pid's DSM partition BEFORE any port is leased (an intent
  // record, like shard_of_ for single-key passages). After a crash
  // anywhere - mid-acquire with a partial prefix held, inside the CS, or
  // mid-release - calling lock_batch/lock/recover again replays the
  // batch: every shard named by the mask is re-entered through the
  // paper's recovery protocol (re-binding the persisted lease, wait-free
  // CSR if the crash was in the CS) and exited, then the mask is
  // cleared. No hold is leaked and none can be duplicated; the only
  // decay is PortLease's documented port-leak window, which scavenge()
  // repairs.
  // -------------------------------------------------------------------------
  static constexpr int kMaxBatchShards = 64;  // bitmask width

  // Acquire the locks guarding every key in [keys, keys+nkeys) (duplicate
  // keys and same-shard keys collapse). Returns the shard bitmask.
  uint64_t lock_batch(Proc& h, int pid, const uint64_t* keys, size_t nkeys) {
    check_pid(pid);
    RME_ASSERT(nkeys >= 1, "LockTable: empty batch");
    RME_ASSERT(shards() <= kMaxBatchShards,
               "LockTable: batch ops need <= 64 shards");
    if (batch_mask_[static_cast<size_t>(pid)].load(h.ctx) != 0) {
      recover_batch(h, pid);  // replay a crashed batch first
    }
    if (shard_of_[static_cast<size_t>(pid)].load(h.ctx) != kNoShard) {
      recover(h, pid);  // finish a crashed single-key passage first
    }
    uint64_t mask = 0;
    for (size_t i = 0; i < nkeys; ++i) {
      mask |= uint64_t{1} << shard_for_key(keys[i]);
    }
    // Intent first: a crash after this store replays (finishes) whatever
    // prefix of the batch was acquired.
    batch_mask_[static_cast<size_t>(pid)].store(h.ctx, mask);
    for (int s = 0; s < shards(); ++s) {
      if ((mask & (uint64_t{1} << s)) == 0) continue;
      Shard& sh = shards_[static_cast<size_t>(s)];
      platform::WaitSiteScope site(h.ctx, &sh.lock);  // per-shard parking
      const int port = sh.lease.acquire(h.ctx, pid);
      sh.lock.lock(h, port);
    }
    return mask;
  }

  // Deadline batches: acquire the shards guarding `keys` in ascending
  // shard order via bounded per-shard attempts, polling `expired`
  // between attempts. Returns the full mask on success. On expiry the
  // held PREFIX is backed out - released in the same ascending order -
  // the persisted intent cleared, and 0 returned: a timed-out batch
  // leaves no residue. Crash consistency is the same protocol as
  // lock_batch: the full mask is persisted before the first lease, and a
  // crash anywhere (mid-acquire, mid-backout) is replayed by
  // recover_batch - shards with a persisted lease are re-entered and
  // exited, shards already backed out (or never reached) quiesce.
  uint64_t lock_batch_until(Proc& h, int pid, const uint64_t* keys,
                            size_t nkeys,
                            const std::function<bool()>& expired) {
    check_pid(pid);
    RME_ASSERT(nkeys >= 1, "LockTable: empty batch");
    RME_ASSERT(shards() <= kMaxBatchShards,
               "LockTable: batch ops need <= 64 shards");
    if (batch_mask_[static_cast<size_t>(pid)].load(h.ctx) != 0) {
      recover_batch(h, pid);  // replay a crashed batch first
    }
    if (shard_of_[static_cast<size_t>(pid)].load(h.ctx) != kNoShard) {
      recover(h, pid);  // finish a crashed single-key passage first
    }
    uint64_t mask = 0;
    for (size_t i = 0; i < nkeys; ++i) {
      mask |= uint64_t{1} << shard_for_key(keys[i]);
    }
    // Intent first (full mask, like lock_batch): a crash below replays
    // whatever prefix was acquired at that point.
    batch_mask_[static_cast<size_t>(pid)].store(h.ctx, mask);
    uint64_t held = 0;
    platform::Waiter wtr;
    for (int s = 0; s < shards(); ++s) {
      if ((mask & (uint64_t{1} << s)) == 0) continue;
      Shard& sh = shards_[static_cast<size_t>(s)];
      // Covers the retry pauses too: the waiter parks under the shard
      // it is actually blocked on, the key that shard's release wakes.
      platform::WaitSiteScope site(h.ctx, &sh.lock);
      for (;;) {
        if (try_enter_shard(h, pid, sh) != kNoLease) {
          held |= uint64_t{1} << s;
          break;
        }
        if (expired()) {
          // Sorted prefix backout: release the held prefix in the same
          // ascending order it was acquired, then clear the intent. A
          // crash mid-backout is caught by recover_batch (released
          // shards have no lease and quiesce; still-held ones replay).
          for (int t = 0; t < shards(); ++t) {
            if ((held & (uint64_t{1} << t)) == 0) continue;
            Shard& bh = shards_[static_cast<size_t>(t)];
            const int port = bh.lease.held(h.ctx, pid);
            RME_ASSERT(port != kNoLease,
                       "LockTable: backout shard without a lease");
            bh.lock.unlock(h, port);
            bh.lease.release(h.ctx, pid);
          }
          batch_mask_[static_cast<size_t>(pid)].store(h.ctx, 0);
          return 0;
        }
        wtr.pause(h.ctx, this);
      }
    }
    return mask;
  }

  // Release every shard lock the pid's in-flight batch holds, then clear
  // the persisted intent. A crash mid-release is caught by recover_batch:
  // already-released shards have no lease left and are skipped.
  void unlock_batch(Proc& h, int pid) {
    check_pid(pid);
    const uint64_t mask = batch_mask_[static_cast<size_t>(pid)].load(h.ctx);
    RME_ASSERT(mask != 0, "LockTable: unlock_batch without a batch");
    for (int s = 0; s < shards(); ++s) {
      if ((mask & (uint64_t{1} << s)) == 0) continue;
      Shard& sh = shards_[static_cast<size_t>(s)];
      const int port = sh.lease.held(h.ctx, pid);
      RME_ASSERT(port != kNoLease, "LockTable: batch shard without a lease");
      sh.lock.unlock(h, port);
      sh.lease.release(h.ctx, pid);
    }
    batch_mask_[static_cast<size_t>(pid)].store(h.ctx, 0);
  }

  // The shard bitmask of pid's in-flight batch (0 when none).
  uint64_t current_batch(Ctx& ctx, int pid) const {
    check_pid(pid);
    return batch_mask_[static_cast<size_t>(pid)].load(ctx);
  }

  // Finish any super-passage this pid left behind (crash recovery when the
  // retried operation targets a different shard, or explicit repair on
  // process restart). The visitor, if any, runs inside the re-entered
  // critical section so the application can redo/undo its own state.
  using RecoveryVisitor = std::function<void(Proc&, int shard)>;

  // Replay a partially-held batch: every shard named by the persisted
  // mask is recovered independently in ascending order - re-bind the
  // lease and run a recovery passage if one is held (finishing an
  // interrupted Try, CS, or Exit on that shard), or declare the pid
  // quiescent if the crash hit that shard's claim window. Shards the
  // batch never reached, or already released, fall into the quiesce arm,
  // which is harmless. Idempotent; a no-op when no batch is in flight.
  void recover_batch(Proc& h, int pid, const RecoveryVisitor& visit = nullptr) {
    check_pid(pid);
    const uint64_t mask = batch_mask_[static_cast<size_t>(pid)].load(h.ctx);
    if (mask == 0) return;
    for (int s = 0; s < shards(); ++s) {
      if ((mask & (uint64_t{1} << s)) == 0) continue;
      Shard& sh = shards_[static_cast<size_t>(s)];
      platform::WaitSiteScope site(h.ctx, &sh.lock);  // per-shard parking
      if (sh.lease.held(h.ctx, pid) != kNoLease) {
        const int port = sh.lease.acquire(h.ctx, pid);  // re-bind, no claim
        sh.lock.lock(h, port);  // Try section = recovery; may re-enter CS
        if (visit) visit(h, s);
        sh.lock.unlock(h, port);
        sh.lease.release(h.ctx, pid);
      } else {
        sh.lease.quiesce(h.ctx, pid);
      }
    }
    batch_mask_[static_cast<size_t>(pid)].store(h.ctx, 0);
  }

  void recover(Proc& h, int pid, const RecoveryVisitor& visit = nullptr) {
    check_pid(pid);
    if (batch_mask_[static_cast<size_t>(pid)].load(h.ctx) != 0) {
      recover_batch(h, pid, visit);
    }
    const int s = shard_of_[static_cast<size_t>(pid)].load(h.ctx);
    if (s == kNoShard) return;
    Shard& sh = shards_[static_cast<size_t>(s)];
    platform::WaitSiteScope site(h.ctx, &sh.lock);  // per-shard parking
    if (sh.lease.held(h.ctx, pid) != kNoLease) {
      const int port = sh.lease.acquire(h.ctx, pid);  // re-bind, no claim
      sh.lock.lock(h, port);  // Try section = recovery; may re-enter CS
      if (visit) visit(h, s);
      sh.lock.unlock(h, port);
      sh.lease.release(h.ctx, pid);
    } else {
      // Crash inside the claim window: intent recorded, no lease written
      // (port possibly leaked). Declare the pid quiescent so the shard's
      // pool stays scavengeable.
      sh.lease.quiesce(h.ctx, pid);
    }
    shard_of_[static_cast<size_t>(pid)].store(h.ctx, kNoShard);
  }

  // Which shard pid's in-flight passage targets (kNoShard when idle).
  int current_shard(Ctx& ctx, int pid) const {
    check_pid(pid);
    return shard_of_[static_cast<size_t>(pid)].load(ctx);
  }

  LockT& shard_lock(int s) { return shards_[static_cast<size_t>(s)].lock; }
  PortLease<P>& shard_lease(int s) {
    return shards_[static_cast<size_t>(s)].lease;
  }

  // Aggregate acquisition count across shards (tests/benches).
  uint64_t total_acquisitions() {
    uint64_t n = 0;
    for (auto& sh : shards_) n += sh.lock.total_stats().acquisitions;
    return n;
  }

 private:
  struct Shard {
    LockT lock;
    PortLease<P> lease;
    Shard(Env& env, int ports, int npids, const Options& opt)
        : lock(env, ports, opt.lock), lease(env, ports, npids) {}
  };

  // One bounded attempt to enter `sh`'s critical section: claim a port
  // without blocking, verify via the lease pool that nobody else is
  // inside the shard (every live passage holds its lease from Try entry
  // to after Exit), then enqueue - uncontended unless a rival slipped in
  // between probe and enqueue. Returns the held port, or kNoLease after
  // depositing the claim back (the would-block arm). Like
  // std::mutex::try_lock, the attempt may fail SPURIOUSLY: two probers
  // racing on a free shard each see the other's claimed port and both
  // back out (neither can tell a prober's transient claim from a real
  // passage without committing to the queue). Retry loops absorb this -
  // their pacing desynchronises the rivals - and the deadline bounds
  // the pathological lock-step case. A pid with a persisted lease
  // (crashed passage) re-binds and replays instead - recovery is this
  // pid's own obligation and cannot be refused.
  int try_enter_shard(Proc& h, int pid, Shard& sh) {
    platform::WaitSiteScope site(h.ctx, &sh.lock);  // per-shard parking
    if (sh.lease.held(h.ctx, pid) != kNoLease) {
      const int port = sh.lease.acquire(h.ctx, pid);  // re-bind, no claim
      sh.lock.lock(h, port);  // Try section = recovery; may re-enter CS
      return port;
    }
    const int port = sh.lease.try_claim(h.ctx, pid);
    if (port == kNoLease) return kNoLease;  // pool exhausted: would block
    if (sh.lease.free_ports(h.ctx) < sh.lease.ports() - 1) {
      // Another port is out: a rival is somewhere in Try/CS/Exit. Put
      // the claim back rather than committing to a wait in the queue.
      sh.lease.release(h.ctx, pid);
      return kNoLease;
    }
    sh.lock.lock(h, port);
    return port;
  }

  void check_pid(int pid) const {
    RME_ASSERT(pid >= 0 && pid < npids_, "LockTable: bad pid");
  }

  static uint64_t mix(uint64_t x) {  // splitmix64 finaliser
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  int npids_;
  nvm::Seq<Shard> shards_;
  nvm::Seq<typename P::template Atomic<int>> shard_of_;
  // Persisted batch intent, one bit per target shard (pid's DSM
  // partition, like shard_of_). Written BEFORE the first lease claim.
  nvm::Seq<typename P::template Atomic<uint64_t>> batch_mask_;
};

}  // namespace rme::core

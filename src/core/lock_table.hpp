// RecoverableLockTable: many independent recoverable locks behind one
// key-addressed API - the first many-lock workload shape on the road from
// the paper's single k-ported lock to a production service.
//
// Structure: N shards, each a full RmeLock plus its own PortLease pool.
// Keys map to shards by striped hashing (splitmix64), so a KV-style
// workload spreads across shards and the per-shard port pools stay small:
// with `ports_per_shard < npids` the memory is O(shards * ports), not
// O(shards * clients), and lock() blocks in the lease sweep while a
// shard's pool is exhausted.
//
// Crash recovery composes from the layers below:
//   * shard_of[pid] (persisted, pid's DSM partition) records which shard
//     the pid's in-flight super-passage targets, written BEFORE the port
//     is leased (an intent record).
//   * the shard's PortLease re-binds a recovering pid to the port of its
//     interrupted passage; the shard's RmeLock Try section is the paper's
//     recovery code, including wait-free CS re-entry after a crash in the
//     critical section.
//
// Recovery protocol: call lock(pid, key) again with the SAME key the
// interrupted operation targeted (idempotent redo logs make this natural;
// see examples/recoverable_kv_log.cpp). If the new key maps elsewhere,
// lock() first finishes the stale super-passage - re-entering and exiting
// the old shard's critical section - via recover(); pass a visitor to
// recover() when application state must be repaired inside that CS.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/port_lease.hpp"
#include "core/rme_lock.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "util/assert.hpp"

namespace rme::core {

template <class P, class LockT = RmeLock<P>>
class RecoverableLockTable {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  static constexpr int kNoShard = -1;

  struct Options {
    typename LockT::Options lock{};
  };

  RecoverableLockTable(Env& env, int shards, int ports_per_shard, int npids,
                       Options opt = {})
      : npids_(npids), shard_of_(static_cast<size_t>(npids)) {
    RME_ASSERT(shards >= 1, "LockTable: need >= 1 shard");
    shards_.reserve(static_cast<size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      shards_.push_back(
          std::make_unique<Shard>(env, ports_per_shard, npids, opt));
    }
    for (int pid = 0; pid < npids; ++pid) {
      shard_of_[static_cast<size_t>(pid)].attach(env, pid);  // local on DSM
      shard_of_[static_cast<size_t>(pid)].init(kNoShard);
    }
  }

  int shards() const { return static_cast<int>(shards_.size()); }
  int shard_for_key(uint64_t key) const {
    return static_cast<int>(mix(key) % static_cast<uint64_t>(shards_.size()));
  }

  // Acquire the lock guarding `key`. Returns the shard index (stable for
  // the key) so callers can address per-shard state.
  int lock(Proc& h, int pid, uint64_t key) {
    check_pid(pid);
    const int target = shard_for_key(key);
    const int stale = shard_of_[static_cast<size_t>(pid)].load(h.ctx);
    if (stale != kNoShard && stale != target) {
      // A previous super-passage (interrupted by a crash, then retried
      // under a different key) still owns a port elsewhere: finish it.
      recover(h, pid);
    }
    // Intent first: a crash after this store but before the lease is
    // claimed leaves a harmless record that recover() clears.
    shard_of_[static_cast<size_t>(pid)].store(h.ctx, target);
    Shard& sh = *shards_[static_cast<size_t>(target)];
    const int port = sh.lease.acquire(h.ctx, pid);
    sh.lock.lock(h, port);
    return target;
  }

  void unlock(Proc& h, int pid) {
    check_pid(pid);
    const int s = shard_of_[static_cast<size_t>(pid)].load(h.ctx);
    RME_ASSERT(s != kNoShard, "LockTable: unlock without a shard");
    Shard& sh = *shards_[static_cast<size_t>(s)];
    const int port = sh.lease.held(h.ctx, pid);
    RME_ASSERT(port != kNoLease, "LockTable: unlock without a lease");
    sh.lock.unlock(h, port);
    sh.lease.release(h.ctx, pid);
    // Cleared last: a crash before this store is caught by the
    // lease-not-held check in recover().
    shard_of_[static_cast<size_t>(pid)].store(h.ctx, kNoShard);
  }

  // Finish any super-passage this pid left behind (crash recovery when the
  // retried operation targets a different shard, or explicit repair on
  // process restart). The visitor, if any, runs inside the re-entered
  // critical section so the application can redo/undo its own state.
  using RecoveryVisitor = std::function<void(Proc&, int shard)>;
  void recover(Proc& h, int pid, const RecoveryVisitor& visit = nullptr) {
    check_pid(pid);
    const int s = shard_of_[static_cast<size_t>(pid)].load(h.ctx);
    if (s == kNoShard) return;
    Shard& sh = *shards_[static_cast<size_t>(s)];
    if (sh.lease.held(h.ctx, pid) != kNoLease) {
      const int port = sh.lease.acquire(h.ctx, pid);  // re-bind, no claim
      sh.lock.lock(h, port);  // Try section = recovery; may re-enter CS
      if (visit) visit(h, s);
      sh.lock.unlock(h, port);
      sh.lease.release(h.ctx, pid);
    } else {
      // Crash inside the claim window: intent recorded, no lease written
      // (port possibly leaked). Declare the pid quiescent so the shard's
      // pool stays scavengeable.
      sh.lease.quiesce(h.ctx, pid);
    }
    shard_of_[static_cast<size_t>(pid)].store(h.ctx, kNoShard);
  }

  // Which shard pid's in-flight passage targets (kNoShard when idle).
  int current_shard(Ctx& ctx, int pid) const {
    check_pid(pid);
    return shard_of_[static_cast<size_t>(pid)].load(ctx);
  }

  LockT& shard_lock(int s) { return shards_[static_cast<size_t>(s)]->lock; }
  PortLease<P>& shard_lease(int s) {
    return shards_[static_cast<size_t>(s)]->lease;
  }

  // Aggregate acquisition count across shards (tests/benches).
  uint64_t total_acquisitions() {
    uint64_t n = 0;
    for (auto& sh : shards_) n += sh->lock.total_stats().acquisitions;
    return n;
  }

 private:
  struct Shard {
    LockT lock;
    PortLease<P> lease;
    Shard(Env& env, int ports, int npids, const Options& opt)
        : lock(env, ports, opt.lock), lease(env, ports, npids) {}
  };

  void check_pid(int pid) const {
    RME_ASSERT(pid >= 0 && pid < npids_, "LockTable: bad pid");
  }

  static uint64_t mix(uint64_t x) {  // splitmix64 finaliser
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  int npids_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<typename P::template Atomic<int>> shard_of_;
};

}  // namespace rme::core

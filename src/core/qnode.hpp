// QNode: the queue node type of the core algorithm (paper Figure 3, Types).
//
//   QNode = record { Pred : reference to QNode,
//                    NonNil_Signal : Signal, CS_Signal : Signal }
//
// Pred encodes both queue linkage and the owner's progress:
//   NIL     - owner is between its FAS and the Pred write (Lines 13-14)
//   &Crash  - owner crashed around its FAS; queue may be broken here
//   node    - linked: predecessor in the queue
//   &InCS   - owner is in the critical section
//   &Exit   - owner has completed the critical section
//
// NonNil_Signal announces "Pred is no longer NIL" to repairers (Line 35);
// CS_Signal is the handoff the successor waits on (Line 25).
#pragma once

#include "platform/platform.hpp"
#include "shm/offptr.hpp"
#include "signal/signal.hpp"

namespace rme::core {

template <class P>
struct QNode {
  using Ctx = typename P::Context;
  using Env = typename P::Env;

  // Self-relative (shm/offptr.hpp): nodes live in the region arena and
  // every attached process reads Pred at its own base. Note pred is the
  // FIRST member, so a self-initialised sentinel (`crash_.pred points at
  // crash_`) encodes as delta 0 - a real value, distinct from nil.
  shm::AtomicRef<P, QNode> pred;
  signal::Signal<P> nonnil;
  signal::Signal<P> cs;

  void attach(Env& env, int owner_pid) {
    pred.attach(env, owner_pid);
    nonnil.attach(env, owner_pid);
    cs.attach(env, owner_pid);
  }

  // Fresh-node state (Line 11): Pred = NIL, both signals clear. Raw form
  // for pre-run setup; counted form for in-run recycling (safe only after
  // the QSBR grace period - see nvm/qsbr_pool.hpp).
  void init_fresh() {
    pred.init(nullptr);
    nonnil.init_clear();
    cs.init_clear();
  }
  void reset_for_passage(Ctx& ctx) {
    pred.store(ctx, nullptr, std::memory_order_relaxed);
    nonnil.reset(ctx);
    cs.reset(ctx);
  }
};

}  // namespace rme::core

// ArbitrationTree: the n-process lock of Theorem 3.
//
// n processes compete on a tree of k-ported RmeLock instances of degree
// d = Theta(log n / log log n) (paper Section 3.3, following Golab &
// Hendler's arbitration-tree technique). A process climbs from its leaf to
// the root, holding each node's lock; the root holder is in the global
// critical section. Height is ceil(log_d n), so a crash-free passage costs
// O(log n / log log n) RMRs and a super-passage with f crashes costs
// O((1+f) log n / log log n) - each per-node repair is O(d) and d is one
// O(log n/ log log n) term.
//
// At level l, process pid plays port (pid / d^l) mod d of node
// pid / d^(l+1). Two processes mapping to the same (node, port) share
// their entire subtree below it, and a process only reaches level l while
// holding its level l-1 node, so concurrent same-port use is impossible -
// the RmeLock port contract holds by construction. Release is root-to-leaf
// (reverse acquisition): a process frees its port at level l strictly
// before freeing level l-1, which is what keeps the port exclusive.
//
// Recovery is pure re-execution, no per-process persistent state: each
// RmeLock's Try section is its own recovery code, so after a crash
// anywhere lock(pid) re-climbs - held nodes short-circuit through the
// paper's Line 20 fast path (crashed-in-CS re-entry), released nodes are
// re-acquired. A crash in the global CS therefore re-enters in O(height)
// bounded steps: wait-free CSR.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/rme_lock.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "util/assert.hpp"

namespace rme::core {

// The paper's degree: max(2, round(log n / log log n)).
inline int arbitration_degree(int n) {
  if (n <= 4) return 2;
  const double ln = std::log2(static_cast<double>(n));
  const double lln = std::log2(ln);
  const int d = static_cast<int>(std::lround(ln / lln));
  return d < 2 ? 2 : d;
}

template <class P>
class ArbitrationTree {
 public:
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  struct Options {
    int degree = 0;  // 0 = auto: arbitration_degree(n)
    bool recycle = true;
  };

  ArbitrationTree(Env& env, int nprocs, Options opt = {})
      : n_(nprocs), degree_(opt.degree > 0 ? opt.degree
                                           : arbitration_degree(nprocs)) {
    RME_ASSERT(nprocs >= 1, "ArbitrationTree: need >= 1 process");
    RME_ASSERT(degree_ >= 2, "ArbitrationTree: degree must be >= 2");
    // Height: smallest h with degree_^h >= n.
    height_ = 1;
    {
      int64_t span = degree_;
      while (span < n_) {
        span *= degree_;
        ++height_;
      }
    }
    typename RmeLock<P>::Options lock_opt;
    lock_opt.recycle = opt.recycle;
    level_offset_.resize(static_cast<size_t>(height_) + 1);
    int total = 0;
    int64_t stride = degree_;  // d^(l+1)
    for (int l = 0; l < height_; ++l) {
      level_offset_[static_cast<size_t>(l)] = total;
      total += static_cast<int>((n_ + stride - 1) / stride);
      stride *= degree_;
    }
    level_offset_[static_cast<size_t>(height_)] = total;
    nodes_.reserve(static_cast<size_t>(total));
    for (int i = 0; i < total; ++i) {
      nodes_.push_back(
          std::make_unique<RmeLock<P>>(env, degree_, lock_opt));
    }
  }

  // Try section: climb leaf to root. Recoverable by re-invocation.
  void lock(Proc& h, int pid) {
    check_pid(pid);
    for (int l = 0; l < height_; ++l) {
      node_at(l, pid).lock(h, port_at(l, pid));
    }
  }

  // Exit section: release root to leaf. Wait-free; idempotent under
  // crash-re-execution via each node's idempotent Exit.
  void unlock(Proc& h, int pid) {
    check_pid(pid);
    for (int l = height_ - 1; l >= 0; --l) {
      node_at(l, pid).unlock(h, port_at(l, pid));
    }
  }

  int degree() const { return degree_; }
  int height() const { return height_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  RmeLock<P>& node(int idx) { return *nodes_[static_cast<size_t>(idx)]; }

 private:
  int port_at(int l, int pid) const {
    int64_t v = pid;
    for (int i = 0; i < l; ++i) v /= degree_;
    return static_cast<int>(v % degree_);
  }
  RmeLock<P>& node_at(int l, int pid) {
    int64_t v = pid;
    for (int i = 0; i <= l; ++i) v /= degree_;
    const int idx = level_offset_[static_cast<size_t>(l)] + static_cast<int>(v);
    return *nodes_[static_cast<size_t>(idx)];
  }
  void check_pid(int pid) const {
    RME_ASSERT(pid >= 0 && pid < n_, "ArbitrationTree: bad pid");
  }

  int n_;
  int degree_;
  int height_;
  std::vector<int> level_offset_;
  std::vector<std::unique_ptr<RmeLock<P>>> nodes_;
};

}  // namespace rme::core

// RmeLock: the paper's k-ported recoverable mutual exclusion algorithm
// (Figures 3-4), the core contribution of the reproduction.
//
// Guarantees (paper Theorem 2), all validated by the test suite:
//   * Mutual exclusion, starvation freedom.
//   * Wait-free Exit (Lines 27-29, no loops).
//   * Wait-free critical-section re-entry (crash in CS -> Line 20 fast
//     path), which with mutual exclusion implies CSR.
//   * O(1) RMR per crash-free passage on CC and DSM; O(f k) RMR for a
//     super-passage with f crashes.
//   * The only read-modify-write instruction issued is FAS (exchange).
//
// Usage contract (the paper's port model, Section 3): a process picks a
// port p in its Remainder section and uses it for the whole super-passage;
// no two processes use the same port concurrently. Recovery protocol after
// a crash anywhere: simply call lock(port) again - the Try section is the
// recovery code. unlock(port) is the Exit section; calling lock() after a
// crash inside the CS returns immediately into the CS (Line 20).
//
// Line numbers in comments refer to the paper's Figures 3-4 throughout.
#pragma once

#include <cstdint>

#include "core/qnode.hpp"
#include "core/repair.hpp"
#include "nvm/qsbr_pool.hpp"
#include "nvm/seq.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "rlock/tournament.hpp"
#include "shm/offptr.hpp"
#include "util/assert.hpp"

namespace rme::core {

// RLockT: the k-ported starvation-free RME lock serialising repair
// (paper Figure 3, Line 24). The paper treats it as a pluggable black box
// with an interface contract; the default is the Signal-based tournament
// (O(log k) RMR waits local on both CC and DSM). See
// rlock/peterson_rw.hpp for the read/write alternative.
template <class P, class RLockT = rlock::TournamentRLock<P>>
class RmeLock {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;
  using Node = QNode<P>;

  struct Options {
    // false = verbatim-paper mode: every passage gets a fresh node and
    // retired nodes are never reused (memory grows with the run).
    bool recycle = true;
  };

  struct Stats {
    uint64_t acquisitions = 0;   // completed Try sections
    uint64_t repairs = 0;        // repair bodies executed (Line 31 reached)
    uint64_t repair_fas = 0;     // repairs resolved by Line 47 (FAS on Tail)
    uint64_t repair_headpath = 0;  // Line 48, headpath branch
    uint64_t repair_special = 0;   // Line 48, SpecialNode branch
    uint64_t exit_completions = 0;  // Lines 28-29 run from Line 22
  };

  RmeLock(Env& env, int ports, Options opt = {})
      : ports_(ports),
        opt_(opt),
        pool_(env, ports, opt.recycle),
        rlock_(env, ports) {
    RME_ASSERT(ports >= 1, "RmeLock: need >= 1 port");
    // Seq-backed (arena-aware): Node[], the staged-node records and the
    // per-port stats are all reachable by peers (repair scans Node[],
    // recovery reads staged_), so shm worlds place them in the region.
    node_.reset(env.arena, static_cast<size_t>(ports));
    staged_.reset(env.arena, static_cast<size_t>(ports));
    stats_.reset(env.arena, static_cast<size_t>(ports));
    // Sentinels (Figure 3, Shared objects). They live in global memory
    // (no DSM partition): processes only ever compare their addresses or
    // read fields that never change after setup.
    crash_.attach(env, rmr::kNoOwner);
    incs_.attach(env, rmr::kNoOwner);
    exit_.attach(env, rmr::kNoOwner);
    special_.attach(env, rmr::kNoOwner);
    crash_.pred.init(&crash_);
    incs_.pred.init(&incs_);
    exit_.pred.init(&exit_);
    special_.pred.init(&exit_);       // SpecialNode.Pred = &Exit
    special_.nonnil.init_set();       // SpecialNode.NonNil_Signal = 1
    special_.cs.init_set();           // SpecialNode.CS_Signal = 1
    crash_.nonnil.init_set();         // sentinels are never waited on, but
    incs_.nonnil.init_set();          // keep their signals consistent
    exit_.nonnil.init_set();

    tail_.attach(env, rmr::kNoOwner);
    tail_.init(&special_);            // Tail initially &SpecialNode
    for (int p = 0; p < ports; ++p) {
      node_[static_cast<size_t>(p)].attach(env, rmr::kNoOwner);
      node_[static_cast<size_t>(p)].init(nullptr);  // Node[i] = NIL
    }
    pool_.set_tail_probe(&tail_);
  }

  // ------------------------------------------------------------------
  // Try section (Figure 3 Lines 10-26 + Figure 4). Returns in the CS.
  // ------------------------------------------------------------------
  void lock(Proc& h, int p) {
    check_port(p);
    Ctx& ctx = h.ctx;
    pool_.on_passage_begin(ctx, p);

    for (;;) {  // re-entry point for "go to Line 10" (Line 22)
      Node* mynode = node_slot(p).load(ctx);                        // L10
      Node* mypred = nullptr;
      if (mynode == nullptr) {
        mynode = acquire_node(h, p);                                // L11
        node_slot(p).store(ctx, mynode);                            // L12
        staged_[static_cast<size_t>(p)] = nullptr;
        mypred = tail_.exchange(ctx, mynode);                       // L13
        mynode->pred.store(ctx, mypred);                            // L14
        mynode->nonnil.set(ctx);                                    // L15
      } else {                                                      // L16-17
        // Node[p] is live, so any staged node is either this very node
        // (crash between L12 and the staged-clear below) or stale
        // bookkeeping; either way Node[p] is the single source of truth.
        staged_[static_cast<size_t>(p)] = nullptr;
        if (mynode->pred.load(ctx) == nullptr) {                    // L18
          mynode->pred.store(ctx, &crash_);
        }
        mypred = mynode->pred.load(ctx);                            // L19
        if (mypred == &incs_) {                                     // L20
          return;  // crashed in CS: wait-free re-entry
        }
        if (mypred == &exit_) {                                     // L21
          // L22: execute Lines 28-29 of Exit, then go to Line 10.
          mynode->cs.set(ctx);                                      // L28
          node_slot(p).store(ctx, nullptr);                         // L29
          pool_.retire(ctx, p, mynode);
          ++stat(p).exit_completions;
          continue;
        }
        mynode->nonnil.set(ctx);                                    // L23
        rlock_.lock(h, p);                                          // L24
        mypred = repair_cs(h, p, mynode);                           // L30-49
        rlock_.unlock(h, p);
      }
      mypred->cs.wait(ctx, h.ring);                                 // L25
      mynode->pred.store(ctx, &incs_);                              // L26
      ++stat(p).acquisitions;
      return;  // Critical Section
    }
  }

  // ------------------------------------------------------------------
  // Exit section (Lines 27-29). Wait-free: straight-line code; set() is
  // bounded (Theorem 1 (iii)). Idempotent: a second call, or a call after
  // a crash part-way through, completes or no-ops.
  // ------------------------------------------------------------------
  void unlock(Proc& h, int p) {
    check_port(p);
    Ctx& ctx = h.ctx;
    Node* mynode = node_slot(p).load(ctx);
    if (mynode != nullptr) {
      mynode->pred.store(ctx, &exit_);                              // L27
      // The L28 set() is the LAST signal op of the release path, so the
      // wake hint it records in ctx (signal/signal.hpp) names the spin
      // cell of THIS passage's successor - the next queue occupant -
      // when the svc release hooks read it for the targeted futex
      // handoff (platform/park.hpp).
      mynode->cs.set(ctx);                                          // L28
      node_slot(p).store(ctx, nullptr);                             // L29
      pool_.retire(ctx, p, mynode);
    }
    pool_.on_passage_end(ctx, p);
  }

  // --- introspection (tests, benches, invariant checks) ---
  int ports() const { return ports_; }
  const Stats& stats(int p) const { return stats_[static_cast<size_t>(p)]; }
  Stats total_stats() const {
    Stats t;
    for (const Stats& s : stats_) {
      t.acquisitions += s.acquisitions;
      t.repairs += s.repairs;
      t.repair_fas += s.repair_fas;
      t.repair_headpath += s.repair_headpath;
      t.repair_special += s.repair_special;
      t.exit_completions += s.exit_completions;
    }
    return t;
  }
  uint64_t nodes_allocated() const { return pool_.allocated(); }
  uint64_t nodes_reclaimed(int p) const { return pool_.reclaimed(p); }

  // Raw probes for whitebox tests (read through a context so the RMR
  // accounting stays consistent).
  Node* debug_tail(Ctx& ctx) { return tail_.load(ctx); }
  Node* debug_node(Ctx& ctx, int p) { return node_slot(p).load(ctx); }
  const Node* sentinel_crash() const { return &crash_; }
  const Node* sentinel_incs() const { return &incs_; }
  const Node* sentinel_exit() const { return &exit_; }
  const Node* sentinel_special() const { return &special_; }

 private:
  // ------------------------------------------------------------------
  // Critical section of RLock: queue repair (Figure 4, Lines 30-49).
  // Returns the value of mynode->Pred that Line 25 should wait on.
  // ------------------------------------------------------------------
  Node* repair_cs(Proc& h, int p, Node* mynode) {
    Ctx& ctx = h.ctx;
    Node* mypred = mynode->pred.load(ctx);                          // L30
    if (mypred != &crash_) {
      return mypred;  // already linked; go to Exit section of RLock
    }
    ++stat(p).repairs;

    Node* tail = tail_.load(ctx);                                   // L31
    PathGraph<Node> g(2 * ports_);
    for (int i = 0; i < ports_; ++i) {                              // L32
      Node* cur = node_slot(i).load(ctx);                           // L33
      if (cur == nullptr) continue;                                 // L34
      cur->nonnil.wait(ctx, h.ring);                                // L35
      Node* curpred = cur->pred.load(ctx);                          // L36
      if (curpred == &crash_ || curpred == &incs_ || curpred == &exit_) {
        g.add_vertex(cur);                                          // L37
      } else {
        g.add_edge(cur, curpred);                                   // L38
      }
    }
    g.compute();                                                    // L39

    const auto* mypath = g.path_of(mynode);                         // L40
    RME_ASSERT(mypath != nullptr, "repair: my node not in graph");
    const auto* tailpath = g.contains(tail) ? g.path_of(tail) : nullptr;  // L41

    const typename PathGraph<Node>::Path* headpath = nullptr;
    for (const auto& sigma : g.paths()) {                           // L42
      Node* endpred = sigma.end->pred.load(ctx);                    // L43
      if (endpred == &incs_ || endpred == &exit_) {
        Node* startpred = sigma.start->pred.load(ctx);              // L44
        if (startpred != &exit_) {
          headpath = &sigma;                                        // L45
        }
      }
    }

    bool tail_done = tailpath == nullptr;                           // L46
    if (!tail_done) {
      Node* tp = tailpath->end->pred.load(ctx);
      tail_done = (tp == &incs_ || tp == &exit_);
    }
    Node* mypred_new = nullptr;
    if (tail_done) {
      mypred_new = tail_.exchange(ctx, mypath->start);              // L47
      ++stat(p).repair_fas;
    } else if (headpath != nullptr) {                               // L48
      mypred_new = headpath->start;
      ++stat(p).repair_headpath;
    } else {
      mypred_new = &special_;
      ++stat(p).repair_special;
    }
    mynode->pred.store(ctx, mypred_new);                            // L49
    return mypred_new;
  }

  // Line 11: "new QNode". Prefer a node staged by a passage that crashed
  // between pool acquisition and the Node[p] write (plugging that leak),
  // then the recycling pool, then a fresh allocation.
  Node* acquire_node(Proc& h, int p) {
    shm::OffPtr<Node>& staged = staged_[static_cast<size_t>(p)];
    Node* n = staged ? staged.get() : pool_.acquire(h.ctx, p);
    staged = n;
    n->reset_for_passage(h.ctx);
    return n;
  }

  shm::AtomicRef<P, Node>& node_slot(int p) {
    return node_[static_cast<size_t>(p)];
  }
  Stats& stat(int p) { return stats_[static_cast<size_t>(p)]; }
  void check_port(int p) const {
    RME_ASSERT(p >= 0 && p < ports_, "RmeLock: bad port");
  }

  int ports_;
  Options opt_;
  nvm::QsbrPool<Node, P> pool_;
  RLockT rlock_;

  Node crash_, incs_, exit_, special_;  // sentinel QNodes
  // All queue links are self-relative (shm/offptr.hpp): region worlds can
  // be attached at any base and each process decodes at its own mapping.
  // tail_.exchange stays the single FAS the paper charges.
  shm::AtomicRef<P, Node> tail_;
  nvm::Seq<shm::AtomicRef<P, Node>> node_;  // Node[0..k-1]
  // Per-port node taken from pool, pre-L12; read cross-process after a
  // crash, hence offset-linked too.
  nvm::Seq<shm::OffPtr<Node>> staged_;
  nvm::Seq<Stats> stats_;
};

}  // namespace rme::core

// Simple baseline locks: TAS, TTAS, ticket, CLH.
//
// None are crash-recoverable; they anchor the RMR and throughput
// comparisons (experiments E2, E4, E9):
//   TAS    - exchange loop on one cell: Theta(contenders) RMR per passage
//            on both models; the worst reasonable baseline.
//   TTAS   - read-spin then exchange: cache-friendly on CC, still remote
//            spinning on DSM.
//   Ticket - FAI + read spin: O(1) RMW but remote spinning; uses the kFai
//            instruction (instruction-mix contrast for E8).
//   CLH    - implicit queue, spin on predecessor's cell: O(1) RMR on CC,
//            unbounded on DSM (the predecessor's cell is remote) - the
//            textbook CC/DSM separation the paper's Signal object exists
//            to avoid.
#pragma once

#include <vector>

#include "platform/platform.hpp"
#include "platform/process.hpp"

namespace rme::baselines {

template <class P>
class TasLock {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  explicit TasLock(Env& env) {
    word_.attach(env, rmr::kNoOwner);
    word_.init(0);
  }
  void lock(Proc& h, int /*p*/) {
    platform::Backoff bo;
    while (word_.exchange(h.ctx, 1, std::memory_order_acquire) != 0) {
      bo.spin();
    }
  }
  // One bounded attempt: a single exchange.
  bool try_lock(Proc& h, int /*p*/) {
    return word_.exchange(h.ctx, 1, std::memory_order_acquire) == 0;
  }
  void unlock(Proc& h, int /*p*/) {
    word_.store(h.ctx, 0, std::memory_order_release);
  }

 private:
  typename P::template Atomic<int> word_;
};

template <class P>
class TtasLock {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  explicit TtasLock(Env& env) {
    word_.attach(env, rmr::kNoOwner);
    word_.init(0);
  }
  void lock(Proc& h, int /*p*/) {
    platform::Backoff bo;
    for (;;) {
      while (word_.load(h.ctx, std::memory_order_relaxed) != 0) bo.spin();
      if (word_.exchange(h.ctx, 1, std::memory_order_acquire) == 0) return;
    }
  }
  // One bounded attempt: probe, then a single exchange if it looked free.
  bool try_lock(Proc& h, int /*p*/) {
    if (word_.load(h.ctx, std::memory_order_relaxed) != 0) return false;
    return word_.exchange(h.ctx, 1, std::memory_order_acquire) == 0;
  }
  void unlock(Proc& h, int /*p*/) {
    word_.store(h.ctx, 0, std::memory_order_release);
  }

 private:
  typename P::template Atomic<int> word_;
};

template <class P>
class TicketLock {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  explicit TicketLock(Env& env) {
    next_.attach(env, rmr::kNoOwner);
    serving_.attach(env, rmr::kNoOwner);
    next_.init(0);
    serving_.init(0);
  }
  void lock(Proc& h, int /*p*/) {
    const uint64_t my = next_.fetch_add(h.ctx, 1);
    platform::Backoff bo;
    while (serving_.load(h.ctx, std::memory_order_acquire) != my) {
      bo.spin();
    }
  }
  void unlock(Proc& h, int /*p*/) {
    const uint64_t s = serving_.load(h.ctx, std::memory_order_relaxed);
    serving_.store(h.ctx, s + 1, std::memory_order_release);
  }

 private:
  typename P::template Atomic<uint64_t> next_;
  typename P::template Atomic<uint64_t> serving_;
};

template <class P>
class ClhLock {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  ClhLock(Env& env, int ports)
      : slots_(static_cast<size_t>(ports)),
        owned_(static_cast<size_t>(2 * ports + 1)) {
    tail_.attach(env, rmr::kNoOwner);
    for (auto& c : owned_) {
      c.flag.attach(env, rmr::kNoOwner);
      c.flag.init(0);
    }
    // Dummy released node seeds the queue.
    owned_[0].flag.init(0);
    tail_.init(&owned_[0]);
    size_t next = 1;
    for (auto& s : slots_) {
      s.mine = &owned_[next++];
      s.mine->flag.init(1);
    }
  }

  void lock(Proc& h, int p) {
    Ctx& ctx = h.ctx;
    Slot& s = slots_[static_cast<size_t>(p)];
    s.mine->flag.store(ctx, 1, std::memory_order_relaxed);
    Cell* pred = tail_.exchange(ctx, s.mine);
    s.pred = pred;
    // Spin on the predecessor's cell: CC-local after first read, but a
    // remote cell on DSM - the structural flaw the paper's Signal fixes.
    platform::Backoff bo;
    while (pred->flag.load(ctx, std::memory_order_acquire) != 0) {
      bo.spin();
    }
  }

  void unlock(Proc& h, int p) {
    Ctx& ctx = h.ctx;
    Slot& s = slots_[static_cast<size_t>(p)];
    Cell* mine = s.mine;
    mine->flag.store(ctx, 0, std::memory_order_release);
    s.mine = s.pred;  // recycle predecessor's cell (classic CLH)
    s.pred = nullptr;
  }

 private:
  struct Cell {
    typename P::template Atomic<int> flag;
  };
  struct Slot {
    Cell* mine = nullptr;
    Cell* pred = nullptr;
  };

  typename P::template Atomic<Cell*> tail_;
  std::vector<Slot> slots_;
  std::vector<Cell> owned_;
};

}  // namespace rme::baselines

// Simple baseline locks: TAS, TTAS, ticket, CLH.
//
// None are crash-recoverable; they anchor the RMR and throughput
// comparisons (experiments E2, E4, E9):
//   TAS    - exchange loop on one cell: Theta(contenders) RMR per passage
//            on both models; the worst reasonable baseline.
//   TTAS   - read-spin then exchange: cache-friendly on CC, still remote
//            spinning on DSM.
//   Ticket - FAI + read spin: O(1) RMW but remote spinning; uses the kFai
//            instruction (instruction-mix contrast for E8).
//   CLH    - implicit queue, spin on predecessor's cell: O(1) RMR on CC,
//            unbounded on DSM (the predecessor's cell is remote) - the
//            textbook CC/DSM separation the paper's Signal object exists
//            to avoid.
//
// All four expose try_lock (one bounded attempt) so they participate in
// the TryLock conformance suite and the rme::svc deadline verbs. The
// blocking paths keep their canonical instruction mixes; the ticket and
// CLH try paths additionally need one CAS (an unconditional FAI/exchange
// could not be abandoned).
#pragma once

#include <vector>

#include "platform/platform.hpp"
#include "platform/process.hpp"

namespace rme::baselines {

template <class P>
class TasLock {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  explicit TasLock(Env& env) {
    word_.attach(env, rmr::kNoOwner);
    word_.init(0);
  }
  void lock(Proc& h, int /*p*/) {
    platform::Waiter wtr;
    while (word_.exchange(h.ctx, 1, std::memory_order_acquire) != 0) {
      wtr.pause(h.ctx, &word_);
    }
  }
  // One bounded attempt: a single exchange.
  bool try_lock(Proc& h, int /*p*/) {
    return word_.exchange(h.ctx, 1, std::memory_order_acquire) == 0;
  }
  void unlock(Proc& h, int /*p*/) {
    word_.store(h.ctx, 0, std::memory_order_release);
  }

 private:
  typename P::template Atomic<int> word_;
};

template <class P>
class TtasLock {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  explicit TtasLock(Env& env) {
    word_.attach(env, rmr::kNoOwner);
    word_.init(0);
  }
  void lock(Proc& h, int /*p*/) {
    platform::Waiter wtr;
    for (;;) {
      while (word_.load(h.ctx, std::memory_order_relaxed) != 0) {
        wtr.pause(h.ctx, &word_);
      }
      if (word_.exchange(h.ctx, 1, std::memory_order_acquire) == 0) return;
    }
  }
  // One bounded attempt: probe, then a single exchange if it looked free.
  bool try_lock(Proc& h, int /*p*/) {
    if (word_.load(h.ctx, std::memory_order_relaxed) != 0) return false;
    return word_.exchange(h.ctx, 1, std::memory_order_acquire) == 0;
  }
  void unlock(Proc& h, int /*p*/) {
    word_.store(h.ctx, 0, std::memory_order_release);
  }

 private:
  typename P::template Atomic<int> word_;
};

template <class P>
class TicketLock {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  explicit TicketLock(Env& env) {
    next_.attach(env, rmr::kNoOwner);
    serving_.attach(env, rmr::kNoOwner);
    next_.init(0);
    serving_.init(0);
  }
  void lock(Proc& h, int /*p*/) {
    const uint64_t my = next_.fetch_add(h.ctx, 1);
    platform::Waiter wtr;
    while (serving_.load(h.ctx, std::memory_order_acquire) != my) {
      wtr.pause(h.ctx, &serving_);
    }
  }
  // One bounded attempt: take ticket `s` only when it is already being
  // served, via CAS on the dispenser. The blocking path stays pure FAI;
  // a failed CAS means someone interleaved, and we leave no ticket
  // behind (the unconditional FAI could not be abandoned).
  bool try_lock(Proc& h, int /*p*/) {
    const uint64_t s = serving_.load(h.ctx, std::memory_order_acquire);
    if (next_.load(h.ctx, std::memory_order_relaxed) != s) return false;
    uint64_t expected = s;
    return next_.compare_exchange(h.ctx, expected, s + 1);
  }

  void unlock(Proc& h, int /*p*/) {
    const uint64_t s = serving_.load(h.ctx, std::memory_order_relaxed);
    serving_.store(h.ctx, s + 1, std::memory_order_release);
  }

 private:
  typename P::template Atomic<uint64_t> next_;
  typename P::template Atomic<uint64_t> serving_;
};

// The tail word packs (cell index, per-cell enqueue generation) instead
// of a raw pointer so try_lock's load/CAS window is ABA-safe: a cell that
// was recycled and re-enqueued between the load and the CAS carries a
// fresh generation, so the CAS fails instead of adopting a busy
// predecessor. (The generation is 32 bits; wrap needs 2^32 re-enqueues of
// one cell inside a single try window.) The blocking path is the classic
// exchange and is unaffected.
template <class P>
class ClhLock {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  ClhLock(Env& env, int ports)
      : slots_(static_cast<size_t>(ports)),
        owned_(static_cast<size_t>(2 * ports + 1)) {
    tail_.attach(env, rmr::kNoOwner);
    for (auto& c : owned_) {
      c.flag.attach(env, rmr::kNoOwner);
      c.flag.init(0);
    }
    // Dummy released node (index 0) seeds the queue.
    tail_.init(pack(0, 0));
    uint32_t next = 1;
    for (auto& s : slots_) {
      s.mine = next++;
      cell(s.mine).flag.init(1);
    }
  }

  void lock(Proc& h, int p) {
    Ctx& ctx = h.ctx;
    Slot& s = slots_[static_cast<size_t>(p)];
    Cell& mine = cell(s.mine);
    mine.flag.store(ctx, 1, std::memory_order_relaxed);
    // gen is owner-written: exclusive until the exchange publishes it,
    // and adoption (unlock) happens-after via the exchange's acq_rel.
    const uint64_t prev = tail_.exchange(ctx, pack(s.mine, ++mine.gen));
    s.pred = index_of(prev);
    Cell& pred = cell(s.pred);
    // Spin on the predecessor's cell: CC-local after first read, but a
    // remote cell on DSM - the structural flaw the paper's Signal fixes.
    platform::Waiter wtr;
    while (pred.flag.load(ctx, std::memory_order_acquire) != 0) {
      wtr.pause(ctx, &pred.flag);
    }
  }

  // One bounded attempt: succeed only when the tail cell is already
  // released, by CASing the tail from that released cell to ours - we
  // then hold the lock immediately, so unlock() composes unchanged. A
  // failed CAS (someone enqueued, or the tail cell was recycled - the
  // generation catches that) leaves us out of the queue entirely.
  bool try_lock(Proc& h, int p) {
    Ctx& ctx = h.ctx;
    Slot& s = slots_[static_cast<size_t>(p)];
    uint64_t t = tail_.load(ctx, std::memory_order_acquire);
    if (cell(index_of(t)).flag.load(ctx, std::memory_order_acquire) != 0) {
      return false;  // holder or waiter at the tail
    }
    Cell& mine = cell(s.mine);
    mine.flag.store(ctx, 1, std::memory_order_relaxed);
    if (!tail_.compare_exchange(ctx, t, pack(s.mine, ++mine.gen))) {
      return false;  // lost the race; our cell was never published
    }
    s.pred = index_of(t);
    return true;
  }

  void unlock(Proc& h, int p) {
    Ctx& ctx = h.ctx;
    Slot& s = slots_[static_cast<size_t>(p)];
    cell(s.mine).flag.store(ctx, 0, std::memory_order_release);
    s.mine = s.pred;  // recycle predecessor's cell (classic CLH)
  }

 private:
  struct Cell {
    typename P::template Atomic<int> flag;
    uint32_t gen = 0;  // enqueue count; written only by the cell's owner
  };
  struct Slot {
    uint32_t mine = 0;
    uint32_t pred = 0;
  };

  static uint64_t pack(uint32_t idx, uint32_t gen) {
    return (static_cast<uint64_t>(idx) << 32) | gen;
  }
  static uint32_t index_of(uint64_t word) {
    return static_cast<uint32_t>(word >> 32);
  }
  Cell& cell(uint32_t idx) { return owned_[idx]; }

  typename P::template Atomic<uint64_t> tail_;
  std::vector<Slot> slots_;
  std::vector<Cell> owned_;
};

}  // namespace rme::baselines

// MCS queue lock (Mellor-Crummey & Scott 1991, paper reference [11]).
//
// The classical O(1)-RMR lock on both CC and DSM that the core algorithm
// recoverabilises. NOT crash-recoverable (a crash around the FAS loses the
// predecessor pointer - Section 1.5 explains why that is fatal); it is the
// performance floor in experiments E2/E9 and the instruction-mix contrast
// in E8 (its release path needs CAS, the core lock needs only FAS).
#pragma once

#include <vector>

#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "util/assert.hpp"

namespace rme::baselines {

template <class P>
class McsLock {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  McsLock(Env& env, int ports) : nodes_(static_cast<size_t>(ports)) {
    tail_.attach(env, rmr::kNoOwner);
    tail_.init(nullptr);
    for (int p = 0; p < ports; ++p) {
      nodes_[static_cast<size_t>(p)].next.attach(env, p);
      nodes_[static_cast<size_t>(p)].locked.attach(env, p);
    }
  }

  void lock(Proc& h, int p) {
    Ctx& ctx = h.ctx;
    MNode* me = &nodes_[static_cast<size_t>(p)];
    me->next.store(ctx, nullptr, std::memory_order_relaxed);
    me->locked.store(ctx, 1, std::memory_order_relaxed);
    MNode* pred = tail_.exchange(ctx, me);  // FAS
    if (pred != nullptr) {
      pred->next.store(ctx, me, std::memory_order_release);
      // Local spin: `locked` lives in port p's partition / cache line.
      platform::Waiter wtr;
      while (me->locked.load(ctx, std::memory_order_acquire) != 0) {
        wtr.pause(ctx, &me->locked);
      }
    }
  }

  // One bounded attempt: CAS the tail from empty to our node; never
  // enqueues behind a holder, so unlock() composes unchanged.
  bool try_lock(Proc& h, int p) {
    Ctx& ctx = h.ctx;
    MNode* me = &nodes_[static_cast<size_t>(p)];
    me->next.store(ctx, nullptr, std::memory_order_relaxed);
    me->locked.store(ctx, 1, std::memory_order_relaxed);
    MNode* expected = nullptr;
    return tail_.compare_exchange(ctx, expected, me);
  }

  void unlock(Proc& h, int p) {
    Ctx& ctx = h.ctx;
    MNode* me = &nodes_[static_cast<size_t>(p)];
    MNode* next = me->next.load(ctx, std::memory_order_acquire);
    if (next == nullptr) {
      MNode* expected = me;
      if (tail_.compare_exchange(ctx, expected, nullptr)) {
        return;  // no successor
      }
      // Successor mid-enqueue: wait for its next-pointer write.
      platform::Waiter wtr;
      while ((next = me->next.load(ctx, std::memory_order_acquire)) ==
             nullptr) {
        wtr.pause(ctx, &me->next);
      }
    }
    next->locked.store(ctx, 0, std::memory_order_release);
  }

 private:
  struct MNode {
    typename P::template Atomic<MNode*> next;
    typename P::template Atomic<int> locked;
  };

  typename P::template Atomic<MNode*> tail_;
  std::vector<MNode> nodes_;
};

}  // namespace rme::baselines

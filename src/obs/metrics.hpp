// rme::obs - region-resident telemetry: the MetricsArena.
//
// Every counter the operator loop cares about lives IN the shm region
// (embedded in the RegionHeader, like the WaitArena), so any attached
// process - or a strictly read-only inspector (tools/rme_regionctl.cpp)
// - sees one truth, and the numbers survive SIGKILL exactly like the
// lock state does. Layout is part of the region ABI on every platform.
//
// Write discipline: one row per LOGICAL PID, written only by the
// process currently owning that pid's registry slot - single-writer by
// the same claim protocol that already guards the epoch word. Updates
// are therefore plain relaxed stores (no RMW anywhere: the paper's
// FAS-only instruction budget is untouched), bracketed by a per-row
// SEQLOCK generation word so a concurrent reader never observes a torn
// histogram: odd gen = write in progress, and a reader retries until it
// sees the same even gen on both sides of its copy.
//
// Adoption, not reset: a row accumulates across incarnations of its
// pid. ShmWorld::claim bumps the row's `incarnations` column (under
// slot ownership, the same place the wait word is retired) instead of
// zeroing anything - a SIGKILL'd worker's half-told story stays on the
// record, and soak audits attribute per-incarnation deltas through the
// column. Counters are monotone for the region's whole lifetime.
//
// Histograms are log2-bucketed nanoseconds: bucket i counts samples in
// [2^i, 2^(i+1)) ns (bucket 0 also takes 0), bucket 31 is the open tail
// >= ~2.1 s - which is past every park timeout in the tree, so a
// populated tail bucket in the wake histogram is the signature of a
// lost wake (the cts no_futex_flip arm asserts it stays empty).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace rme::obs {

/// Per-row counter order; also the METRICS_JSON / Prometheus field
/// order, so renderers and mergers loop instead of enumerating.
enum Counter : uint32_t {
  kAcquires = 0,         // successful acquisitions (incl. batches)
  kReleases = 1,         // guard releases (incl. per-batch)
  kContended = 2,        // acquisitions that paused at least once
  kSheds = 3,            // verbs refused by the admission gate
  kTimeouts = 4,         // deadline verbs that expired
  kCrashRecoveries = 5,  // recovery replays driven via this pid
  kHandoffRmrs = 6,      // waiters granted by this pid's releases
  kCounterCount = 7,
};

constexpr const char* counter_name(uint32_t c) {
  switch (c) {
    case kAcquires: return "acquires";
    case kReleases: return "releases";
    case kContended: return "contended";
    case kSheds: return "sheds";
    case kTimeouts: return "timeouts";
    case kCrashRecoveries: return "crash_recoveries";
    case kHandoffRmrs: return "handoff_rmrs";
  }
  return "?";
}

/// Log2-bucketed latency histogram (nanoseconds).
struct Hist {
  static constexpr int kBuckets = 32;
  std::atomic<uint64_t> bucket[kBuckets];

  static constexpr uint32_t bucket_of(uint64_t ns) {
    if (ns <= 1) return 0;
    const uint32_t b = static_cast<uint32_t>(std::bit_width(ns)) - 1;
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Lower edge of bucket `i` in ns (the label the renderers print).
  static constexpr uint64_t bucket_floor_ns(uint32_t i) {
    return i == 0 ? 0 : (uint64_t{1} << i);
  }
};

/// One logical pid's telemetry row. Cache-line aligned so two pids'
/// single writers never share a line; everything inside is written by
/// the slot owner only (see file comment) and read by anyone.
struct alignas(64) PidRow {
  std::atomic<uint32_t> gen;           // seqlock; odd = write in progress
  std::atomic<uint32_t> incarnations;  // claim() bumps; the adoption column
  std::atomic<uint64_t> counter[kCounterCount];
  std::atomic<uint64_t> shard_heat[16];  // acquisitions per shard (mod 16)
  Hist acquire_wait_ns;                  // verb entry -> lock held
  Hist wake_ns;                          // futex wake stamp -> parker running

  static constexpr int kHeatShards = 16;

  // --- single-writer side: slot owner only ---------------------------

  void begin_write() {
    gen.store(gen.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }
  void end_write() {
    std::atomic_thread_fence(std::memory_order_release);
    gen.store(gen.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);
  }

  void bump(Counter c, uint64_t n = 1) {
    counter[c].store(counter[c].load(std::memory_order_relaxed) + n,
                     std::memory_order_relaxed);
  }

  /// One counted event, seqlock-bracketed.
  void add(Counter c, uint64_t n = 1) {
    begin_write();
    bump(c, n);
    end_write();
  }

  /// One acquisition: counters, acquire-wait histogram (wait_ns = 0 is
  /// recorded too - the uncontended floor is part of the story), shard
  /// heat - one seqlock section, so a reader's acquires always covers
  /// its histogram.
  void on_acquire(bool contended, uint64_t wait_ns, int shard = -1) {
    begin_write();
    bump(kAcquires);
    if (contended) bump(kContended);
    auto& b = acquire_wait_ns.bucket[Hist::bucket_of(wait_ns)];
    b.store(b.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    if (shard >= 0) {
      auto& h = shard_heat[shard % kHeatShards];
      h.store(h.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
    }
    end_write();
  }

  /// One release plus the waiters it granted (the wake-chain cost).
  void on_release(uint64_t handoffs) {
    begin_write();
    bump(kReleases);
    if (handoffs != 0) bump(kHandoffRmrs, handoffs);
    end_write();
  }

  /// One consumed futex wake stamp (platform/park.hpp FutexLot).
  void on_wake(uint64_t latency_ns) {
    begin_write();
    auto& b = wake_ns.bucket[Hist::bucket_of(latency_ns)];
    b.store(b.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    end_write();
  }

  /// A new incarnation claimed this pid: ADOPT the row (nothing is
  /// reset), stamp the incarnation column. Called by ShmWorld::claim
  /// under slot ownership, both fresh-claim and takeover paths.
  void adopt() {
    // The previous incarnation may have died INSIDE a seqlock section,
    // leaving the generation odd and readers retrying forever. Re-even
    // it: the interrupted update's stores are per-word atomic and
    // monotone, so unlike the lock state there is nothing to roll back
    // - only the generation protocol needs repair. Single-writer safe:
    // we own the slot, ordered by the epoch fence.
    const uint32_t g = gen.load(std::memory_order_relaxed);
    if ((g & 1u) != 0) gen.store(g + 1, std::memory_order_release);
    begin_write();
    incarnations.store(incarnations.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    end_write();
  }
};

/// The arena: one row per logical pid, embedded in the RegionHeader.
/// Zero-initialised pages ARE the valid empty state (the region creator
/// value-initialises the header; every atomic starts at 0).
struct MetricsArena {
  static constexpr int kRows = 64;  // >= shm::kMaxProcs (static_asserted)
  PidRow rows[kRows];
};

}  // namespace rme::obs

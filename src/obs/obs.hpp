// rme::obs umbrella: region-resident telemetry.
//
//   metrics.hpp   MetricsArena - per-pid seqlocked counter rows, shard
//                 heat, log2 latency histograms; lives in the
//                 RegionHeader, survives SIGKILL, adopted (never reset)
//                 across incarnations
//   snapshot.hpp  lock-free reader: RowSample / Snapshot, METRICS_JSON
//                 and Prometheus renderers
//
// Feeds: svc::Session books verbs into the owning pid's row (behind a
// null-check on Context::metrics - heap worlds pay one predictable
// branch); platform::FutexLot books consumed wake stamps into the wake
// histogram. The live inspector is tools/rme_regionctl.cpp; layout,
// reader protocol and schema are documented in docs/observability.md.
#pragma once

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

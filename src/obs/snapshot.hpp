// rme::obs - the lock-free reader side of the MetricsArena.
//
// sample_row copies one PidRow under its seqlock: read the generation
// (even = quiescent), copy everything, read the generation again, retry
// on mismatch. The writer is plain-store wait-free and never blocks on
// readers; a reader spins only while its row's writer is mid-update (a
// handful of stores), so the bounded retry below fails only against a
// writer that died INSIDE a seqlock section - in which case the row is
// reported torn rather than trusted. Works against a PROT_READ mapping:
// nothing here writes the region.
//
// Snapshot::read merges every row into region-wide totals plus the
// per-row copies, and the renderers turn one Snapshot into the two
// operator formats: a single METRICS_JSON line (schema checked by
// tools/check_bench_json.py) and Prometheus-style text (rme_regionctl
// dump --prom). Layout and schema: docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace rme::obs {

/// Plain-value copy of one PidRow, internally consistent (taken under
/// the row's seqlock).
struct RowSample {
  uint32_t incarnations = 0;
  uint64_t counter[kCounterCount] = {};
  uint64_t shard_heat[PidRow::kHeatShards] = {};
  uint64_t acquire_wait[Hist::kBuckets] = {};
  uint64_t wake[Hist::kBuckets] = {};
  bool torn = false;  // seqlock never settled (writer died mid-update)

  uint64_t acquire_wait_count() const {
    uint64_t n = 0;
    for (uint64_t b : acquire_wait) n += b;
    return n;
  }
  uint64_t wake_count() const {
    uint64_t n = 0;
    for (uint64_t b : wake) n += b;
    return n;
  }
  bool empty() const {
    if (incarnations != 0) return false;
    for (uint64_t c : counter) {
      if (c != 0) return false;
    }
    return wake_count() == 0;
  }
};

/// Seqlock-copy one row. Returns false (and marks the sample torn)
/// only when the generation never settles - the row is then untrusted.
inline bool sample_row(const PidRow& row, RowSample& out,
                       int max_retries = 1000) {
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    const uint32_t g1 = row.gen.load(std::memory_order_acquire);
    if ((g1 & 1u) != 0) continue;  // write in progress
    RowSample s;
    s.incarnations = row.incarnations.load(std::memory_order_relaxed);
    for (uint32_t c = 0; c < kCounterCount; ++c) {
      s.counter[c] = row.counter[c].load(std::memory_order_relaxed);
    }
    for (int h = 0; h < PidRow::kHeatShards; ++h) {
      s.shard_heat[h] = row.shard_heat[h].load(std::memory_order_relaxed);
    }
    for (int b = 0; b < Hist::kBuckets; ++b) {
      s.acquire_wait[b] =
          row.acquire_wait_ns.bucket[b].load(std::memory_order_relaxed);
      s.wake[b] = row.wake_ns.bucket[b].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (row.gen.load(std::memory_order_relaxed) == g1) {
      out = s;
      return true;
    }
  }
  out = RowSample{};
  out.torn = true;
  return false;
}

/// Region-wide merge: per-row samples plus totals over the first
/// `pids` rows. Lock-free and write-free; safe from a read-only map.
struct Snapshot {
  int pids = 0;
  int torn_rows = 0;
  RowSample row[MetricsArena::kRows];
  uint64_t total[kCounterCount] = {};
  uint64_t incarnations = 0;
  uint64_t shard_heat[PidRow::kHeatShards] = {};
  uint64_t acquire_wait[Hist::kBuckets] = {};
  uint64_t wake[Hist::kBuckets] = {};

  uint64_t acquire_wait_count() const {
    uint64_t n = 0;
    for (uint64_t b : acquire_wait) n += b;
    return n;
  }
  uint64_t wake_count() const {
    uint64_t n = 0;
    for (uint64_t b : wake) n += b;
    return n;
  }
  /// Samples at or past `floor_bucket` - the lost-wake probe (bucket 31
  /// sits beyond every park timeout in the tree).
  uint64_t wake_tail(uint32_t floor_bucket) const {
    uint64_t n = 0;
    for (uint32_t b = floor_bucket; b < Hist::kBuckets; ++b) n += wake[b];
    return n;
  }

  static Snapshot read(const MetricsArena& arena, int pids) {
    Snapshot s;
    if (pids < 0) pids = 0;
    if (pids > MetricsArena::kRows) pids = MetricsArena::kRows;
    s.pids = pids;
    for (int p = 0; p < pids; ++p) {
      if (!sample_row(arena.rows[p], s.row[p])) {
        ++s.torn_rows;
        continue;
      }
      const RowSample& r = s.row[p];
      s.incarnations += r.incarnations;
      for (uint32_t c = 0; c < kCounterCount; ++c) s.total[c] += r.counter[c];
      for (int h = 0; h < PidRow::kHeatShards; ++h) {
        s.shard_heat[h] += r.shard_heat[h];
      }
      for (int b = 0; b < Hist::kBuckets; ++b) {
        s.acquire_wait[b] += r.acquire_wait[b];
        s.wake[b] += r.wake[b];
      }
    }
    return s;
  }
};

namespace detail {
inline std::string bucket_array(const uint64_t (&buckets)[Hist::kBuckets]) {
  std::string out = "[";
  for (int b = 0; b < Hist::kBuckets; ++b) {
    if (b != 0) out += ", ";
    out += std::to_string(buckets[b]);
  }
  return out + "]";
}
}  // namespace detail

/// The one-line machine-readable snapshot ("METRICS_JSON {...}"); keys
/// validated by tools/check_bench_json.py, consumed by the CI obs job
/// and the cts cross-checks. `region` names the source region.
inline std::string metrics_json_line(const Snapshot& s,
                                     const std::string& region) {
  util::JsonLine j("METRICS_JSON", util::JsonStyle::kSpaced);
  j.str("region", region);
  j.num("pids", static_cast<uint64_t>(s.pids));
  j.num("incarnations", s.incarnations);
  for (uint32_t c = 0; c < kCounterCount; ++c) {
    j.num(counter_name(c), s.total[c]);
  }
  j.num("acquire_wait_count", s.acquire_wait_count());
  j.num("wake_count", s.wake_count());
  j.num("wake_tail", s.wake_tail(Hist::kBuckets - 1));
  j.raw("acquire_wait_buckets", detail::bucket_array(s.acquire_wait));
  j.raw("wake_buckets", detail::bucket_array(s.wake));
  j.num("torn_rows", static_cast<uint64_t>(s.torn_rows));
  return j.str();
}

/// Prometheus-style exposition text (counter families only; histogram
/// buckets render cumulative, le-labelled by bucket ceiling ns).
inline std::string prometheus_text(const Snapshot& s,
                                   const std::string& region) {
  const std::string label = "{region=\"" + util::json_escape(region) + "\"}";
  std::string out;
  for (uint32_t c = 0; c < kCounterCount; ++c) {
    const std::string name = std::string("rme_") + counter_name(c) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + label + " " + std::to_string(s.total[c]) + "\n";
  }
  out += "# TYPE rme_incarnations_total counter\n";
  out += "rme_incarnations_total" + label + " " +
         std::to_string(s.incarnations) + "\n";
  for (int h = 0; h < PidRow::kHeatShards; ++h) {
    if (s.shard_heat[h] == 0) continue;
    out += "rme_shard_acquires_total{region=\"" + util::json_escape(region) +
           "\",shard=\"" + std::to_string(h) + "\"} " +
           std::to_string(s.shard_heat[h]) + "\n";
  }
  const struct {
    const char* name;
    const uint64_t* buckets;
  } hists[] = {{"rme_acquire_wait_ns", s.acquire_wait},
               {"rme_wake_ns", s.wake}};
  for (const auto& hgram : hists) {
    out += "# TYPE " + std::string(hgram.name) + " histogram\n";
    uint64_t cum = 0;
    for (int b = 0; b < Hist::kBuckets; ++b) {
      cum += hgram.buckets[b];
      out += std::string(hgram.name) + "_bucket{region=\"" +
             util::json_escape(region) + "\",le=\"" +
             (b == Hist::kBuckets - 1
                  ? std::string("+Inf")
                  : std::to_string(Hist::bucket_floor_ns(
                        static_cast<uint32_t>(b) + 1))) +
             "\"} " + std::to_string(cum) + "\n";
    }
    out += std::string(hgram.name) + "_count{region=\"" +
           util::json_escape(region) + "\"} " + std::to_string(cum) + "\n";
  }
  return out;
}

}  // namespace rme::obs

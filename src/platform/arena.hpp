// Arena: the shared-memory placement hook of the platform layer.
//
// The core lock state (RmeLock, PortLease, RecoverableLockTable, flag
// rings, the QSBR node pool) historically parked its arrays in private
// heap containers. For the cross-process service boundary (rme::shm) that
// state must live INSIDE an mmap-backed region so two OS processes see
// the same words. The Arena is the minimal mechanism that makes both
// placements one code path:
//
//   * An Env carries an Arena VALUE (not a pointer to a per-process
//     object): a bump cursor living in the region plus the region's
//     base/limit. Every field is either a plain value or a pointer into
//     the region itself, so a copy of the handle works identically in
//     every process that maps the region - there is no per-process
//     indirection to chase and no vtable.
//   * nvm::Seq (nvm/seq.hpp) consults the Env's arena when sizing an
//     array: a valid arena places the elements in the region; an invalid
//     one (the default: every in-process World) allocates from the heap
//     exactly as before.
//   * Allocation is an atomic fetch-add on the in-region cursor, so
//     runtime allocations (the QSBR pool's fresh-node fallback) are safe
//     from any attached process. Arena memory is never freed: the region
//     owns it, and region teardown reclaims everything at once.
//
// Links stored IN arena memory (queue-node Pred fields, Seq element
// pointers, the QSBR lists) are self-relative offsets (shm/offptr.hpp),
// so region-resident state is valid at whatever base each process mapped
// the region - the attach-anywhere contract of shm::Region. The Arena
// handle itself is still a per-process VIEW (its base/cursor fields are
// local absolute addresses); region-resident structures that must
// remember the arena keep OffPtrs to the cursor/limit words instead of
// an Arena value (see nvm/qsbr_pool.hpp).
//
// Growth: regions can extend themselves at runtime. The dynamic usable
// size lives in a region-resident `limit` word (limit_word); when a grow
// hook is registered (shm/region.hpp registers one that ftruncate-extends
// the backing object within the pre-mapped VA span) an exhausted
// try_allocate consults it before refusing. Raw arenas (tests, heap
// worlds) leave limit_word null and keep the static `limit` semantics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"

namespace rme::platform {

// Process-global grow hook: called with the region base (this process's
// view) and the total byte count the arena needs; returns true once the
// dynamic limit is >= need. Registered by the shm layer (platform code
// cannot include shm headers); never consulted by heap or raw arenas.
using GrowHook = bool (*)(char* region_base, uint64_t need_bytes);
inline GrowHook& arena_grow_hook() {
  static GrowHook hook = nullptr;
  return hook;
}

// Value-type allocation handle. Default-constructed = invalid = callers
// fall back to heap allocation. Copies are cheap within one process;
// cross-process structures store OffPtrs to the words instead (see the
// header comment).
struct Arena {
  std::atomic<uint64_t>* cursor = nullptr;  // byte offset into base, in-region
  char* base = nullptr;                     // region base (this process's view)
  uint64_t limit = 0;                       // static usable bytes (ceiling)
  // Dynamic usable size, region-resident. Null for raw/heap arenas, in
  // which case the static `limit` governs alone.
  std::atomic<uint64_t>* limit_word = nullptr;
  // Consult the grow hook on exhaustion? Off for raw arenas and for
  // worlds that opt out (RME_NO_GROW / ShmWorld::set_grow_enabled).
  bool grow = false;

  bool valid() const { return base != nullptr; }

  // The currently usable byte count: the dynamic word when present
  // (acquire pairs with the grower's release after extending the backing
  // object), else the static limit.
  uint64_t current_limit() const {
    return limit_word != nullptr
               ? limit_word->load(std::memory_order_acquire)
               : limit;
  }

  // Bump-allocate `bytes` aligned to `align`, or nullptr when the region
  // cannot hold it. The CAS loop (rather than a blind fetch_add) keeps a
  // REFUSED allocation from consuming the remaining space: a too-big
  // request leaves the cursor where it was, so smaller requests still
  // succeed and the region-pressure soak arm can drive the arena to its
  // exact limit and observe graceful refusal, not a poisoned cursor.
  // (The arena is harness/placement machinery, not paper-budgeted lock
  // state, so the CAS is fine here.)
  //
  // Alignment is applied to the ABSOLUTE address (base + cursor), not the
  // cursor offset: `base` is a payload pointer into an mmap'd region, so
  // its own alignment is whatever the header layout left it at. Aligning
  // only the offset silently hands out misaligned memory whenever `align`
  // exceeds the alignment of `base` itself - exactly the over-aligned
  // (alignof > 16, up to page-and-beyond) case daemon-side per-connection
  // scratch hits.
  void* try_allocate(size_t bytes, size_t align) {
    RME_ASSERT(valid(), "Arena::try_allocate on an invalid arena");
    RME_ASSERT(align != 0 && (align & (align - 1)) == 0,
               "Arena::try_allocate: alignment must be a power of two");
    const uint64_t b = reinterpret_cast<uint64_t>(base);
    uint64_t cur = cursor->load(std::memory_order_relaxed);
    for (;;) {
      const uint64_t addr = b + cur;
      const uint64_t aligned_addr =
          (addr + align - 1) & ~static_cast<uint64_t>(align - 1);
      if (aligned_addr < addr) return nullptr;  // align-up wrapped: refuse
      const uint64_t aligned = aligned_addr - b;
      if (aligned + bytes < aligned) return nullptr;  // size overflow
      if (aligned + bytes > current_limit()) {
        // Exhausted at the current limit. A growable arena asks the shm
        // layer to extend the region (hook returns true only once the
        // dynamic limit covers `need`, so this loop terminates: either
        // the limit now suffices or the hook refuses at the VA-span
        // ceiling and we refuse cleanly).
        if (grow && limit_word != nullptr && arena_grow_hook() != nullptr &&
            arena_grow_hook()(base, aligned + bytes)) {
          cur = cursor->load(std::memory_order_relaxed);
          continue;
        }
        return nullptr;  // exhausted: clean refusal
      }
      if (cursor->compare_exchange_weak(cur, aligned + bytes,
                                        std::memory_order_relaxed)) {
        return base + aligned;
      }
    }
  }

  // Bump-allocate `bytes` aligned to `align`. Aborts on exhaustion: the
  // region size is a capacity decision made at create time, and silently
  // handing out overlapping memory would be far worse. Callers that can
  // survive refusal (soak pressure arms, operator tooling) use
  // try_allocate instead.
  void* allocate(size_t bytes, size_t align) {
    void* p = try_allocate(bytes, align);
    RME_ASSERT(p != nullptr, "Arena exhausted: size the region up");
    return p;
  }

  // Offset of a region-resident pointer (for header bookkeeping).
  uint64_t offset_of(const void* p) const {
    return static_cast<uint64_t>(static_cast<const char*>(p) - base);
  }
  void* at(uint64_t off) const { return base + off; }
};

}  // namespace rme::platform

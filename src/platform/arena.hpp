// Arena: the shared-memory placement hook of the platform layer.
//
// The core lock state (RmeLock, PortLease, RecoverableLockTable, flag
// rings, the QSBR node pool) historically parked its arrays in private
// heap containers. For the cross-process service boundary (rme::shm) that
// state must live INSIDE an mmap-backed region so two OS processes see
// the same words. The Arena is the minimal mechanism that makes both
// placements one code path:
//
//   * An Env carries an Arena VALUE (not a pointer to a per-process
//     object): a bump cursor living in the region plus the region's
//     base/limit. Every field is either a plain value or a pointer into
//     the region itself, so a copy of the handle works identically in
//     every process that maps the region - there is no per-process
//     indirection to chase and no vtable.
//   * nvm::Seq (nvm/seq.hpp) consults the Env's arena when sizing an
//     array: a valid arena places the elements in the region; an invalid
//     one (the default: every in-process World) allocates from the heap
//     exactly as before.
//   * Allocation is an atomic fetch-add on the in-region cursor, so
//     runtime allocations (the QSBR pool's fresh-node fallback) are safe
//     from any attached process. Arena memory is never freed: the region
//     owns it, and region teardown reclaims everything at once.
//
// The cross-process validity of ORDINARY pointers stored in arena memory
// (queue-node Pred fields, the lock-table's shard array) is guaranteed by
// the fixed-address mapping contract of shm::Region: every process maps
// the region at the address recorded in its header, so a region-resident
// pointer to region-resident memory means the same thing everywhere.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"

namespace rme::platform {

// Value-type allocation handle. Default-constructed = invalid = callers
// fall back to heap allocation. Copies are cheap and cross-process safe
// (all members are region addresses or plain values).
struct Arena {
  std::atomic<uint64_t>* cursor = nullptr;  // byte offset into base, in-region
  char* base = nullptr;                     // region base (fixed mapping)
  uint64_t limit = 0;                       // usable bytes from base

  bool valid() const { return base != nullptr; }

  // Bump-allocate `bytes` aligned to `align`, or nullptr when the region
  // cannot hold it. The CAS loop (rather than a blind fetch_add) keeps a
  // REFUSED allocation from consuming the remaining space: a too-big
  // request leaves the cursor where it was, so smaller requests still
  // succeed and the region-pressure soak arm can drive the arena to its
  // exact limit and observe graceful refusal, not a poisoned cursor.
  // (The arena is harness/placement machinery, not paper-budgeted lock
  // state, so the CAS is fine here.)
  //
  // Alignment is applied to the ABSOLUTE address (base + cursor), not the
  // cursor offset: `base` is a payload pointer into an mmap'd region, so
  // its own alignment is whatever the header layout left it at. Aligning
  // only the offset silently hands out misaligned memory whenever `align`
  // exceeds the alignment of `base` itself - exactly the over-aligned
  // (alignof > 16, up to page-and-beyond) case daemon-side per-connection
  // scratch hits.
  void* try_allocate(size_t bytes, size_t align) {
    RME_ASSERT(valid(), "Arena::try_allocate on an invalid arena");
    RME_ASSERT(align != 0 && (align & (align - 1)) == 0,
               "Arena::try_allocate: alignment must be a power of two");
    const uint64_t b = reinterpret_cast<uint64_t>(base);
    uint64_t cur = cursor->load(std::memory_order_relaxed);
    for (;;) {
      const uint64_t addr = b + cur;
      const uint64_t aligned_addr =
          (addr + align - 1) & ~static_cast<uint64_t>(align - 1);
      if (aligned_addr < addr) return nullptr;  // align-up wrapped: refuse
      const uint64_t aligned = aligned_addr - b;
      if (aligned + bytes > limit || aligned + bytes < aligned) {
        return nullptr;  // exhausted (or size overflow): clean refusal
      }
      if (cursor->compare_exchange_weak(cur, aligned + bytes,
                                        std::memory_order_relaxed)) {
        return base + aligned;
      }
    }
  }

  // Bump-allocate `bytes` aligned to `align`. Aborts on exhaustion: the
  // region size is a capacity decision made at create time, and silently
  // handing out overlapping memory would be far worse. Callers that can
  // survive refusal (soak pressure arms, operator tooling) use
  // try_allocate instead.
  void* allocate(size_t bytes, size_t align) {
    void* p = try_allocate(bytes, align);
    RME_ASSERT(p != nullptr, "Arena exhausted: size the region up");
    return p;
  }

  // Offset of a region-resident pointer (for header bookkeeping).
  uint64_t offset_of(const void* p) const {
    return static_cast<uint64_t>(static_cast<const char*>(p) - base);
  }
  void* at(uint64_t off) const { return base + off; }
};

}  // namespace rme::platform

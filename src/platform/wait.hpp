// Concrete WaitPolicy implementations (the policy interface itself lives
// in platform/platform.hpp next to Waiter, so lock headers need no new
// includes):
//
//   SpinPolicy       - pure busy-wait (cpu pause every iteration). The
//                      lowest-latency choice when every waiter owns a
//                      core; pathological when oversubscribed.
//   SpinYieldPolicy  - bounded spin burst then sched_yield (the library's
//                      historical Backoff pacing and the default when no
//                      policy is installed).
//   ParkPolicy       - spin, then yield, then timed futex-style parking
//                      (platform/park.hpp) with exponentially escalating
//                      nap times. Parks are keyed by (policy, wait site):
//                      during a session verb the site is the lock address
//                      (platform.hpp Waiter), so on_release(site) - driven
//                      by rme::svc sessions - is a targeted single-waiter
//                      handoff in park order (unpark_one), and releases of
//                      one lock never wake waiters of another lock that
//                      happens to share the policy object. The locks wake
//                      waiters by writing memory, not by syscall, so parks
//                      stay timed and every woken waiter re-checks its
//                      condition.
//   AdaptivePolicy   - starts as spin-then-yield and demotes itself to
//                      parking when the sessions driving it report a
//                      contended_acquires/acquires ratio above a
//                      threshold (WaitPolicy::observe). One-way: once the
//                      workload has proven oversubscribed, parking's
//                      freed cores beat spin's latency for the rest of
//                      the run.
//
// All per-wait-site iteration state lives in the caller's Waiter, so ONE
// policy instance may be shared by any number of sessions and threads -
// sharing is exactly what lets a release hand off to a rival session's
// parked waiter. (AdaptivePolicy's demotion latch is an atomic for the
// same reason.)
//
// Caveat for NON-session waits: a parking policy's cooperative wake
// requires the parker and the releaser to agree on the (policy, site)
// key, which sessions arrange by pinning the lock address per verb.
// A wait loop entered OUTSIDE any session verb while a parking policy
// is installed (e.g. a bare api::Guard acquire on a second lock) parks
// under its own spin-cell address, which no release targets - it still
// makes progress (parks are always timed) but pays up to max_park per
// wake. Acquire through a session when a parking policy is installed.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "platform/park.hpp"
#include "platform/platform.hpp"

namespace rme::platform {

namespace detail {

// The shared park-mode tail of the parking policies: escalate the nap
// geometrically from min_park to max_park, parked under the
// (policy, site) key the releaser's on_release(site) targets.
inline void escalating_park(const void* policy, const void* addr,
                            uint32_t naps_so_far,
                            std::chrono::nanoseconds min_park,
                            std::chrono::nanoseconds max_park) {
  const uint32_t naps = std::min<uint32_t>(naps_so_far, 21);
  const auto nap = std::min(max_park, min_park * (1u << (naps - 1)));
  park_for(park_key(policy, addr), nap);
}

}  // namespace detail

class SpinPolicy final : public WaitPolicy {
 public:
  static constexpr const char* kName = "spin";
  void pause(const void* /*addr*/, uint32_t /*spins*/) override {
    cpu_pause();
  }
};

class SpinYieldPolicy final : public WaitPolicy {
 public:
  static constexpr const char* kName = "spin_yield";
  explicit SpinYieldPolicy(uint32_t spin_limit = Waiter::kDefaultSpinLimit)
      : spin_limit_(spin_limit) {}
  void pause(const void* /*addr*/, uint32_t spins) override {
    if (spins <= spin_limit_) {
      cpu_pause();
    } else {
      std::this_thread::yield();
    }
  }

 private:
  uint32_t spin_limit_;
};

class ParkPolicy final : public WaitPolicy {
 public:
  static constexpr const char* kName = "park";

  struct Options {
    uint32_t spin_limit = 64;    // cpu_pause() for the first N iterations
    uint32_t yield_limit = 128;  // then yield() until this iteration
    std::chrono::nanoseconds min_park{std::chrono::microseconds(50)};
    std::chrono::nanoseconds max_park{std::chrono::microseconds(500)};
  };

  ParkPolicy() : opt_() {}
  explicit ParkPolicy(Options opt) : opt_(opt) {}

  void pause(const void* addr, uint32_t spins) override {
    if (spins <= opt_.spin_limit) {
      cpu_pause();
      return;
    }
    if (spins <= opt_.yield_limit) {
      std::this_thread::yield();
      return;
    }
    // The park key pairs this policy with the wait site (the lock
    // address during a session verb), so the releaser's unpark_one
    // targets exactly the FIFO of waiters blocked on that lock under
    // this policy.
    detail::escalating_park(this, addr, spins - opt_.yield_limit,
                            opt_.min_park, opt_.max_park);
  }

  // Fair handoff: grant the oldest waiter parked on (policy, site) - at
  // most ONE waiter per release, matching the lock's own one-successor
  // handoff instead of the historical policy-wide thundering herd.
  size_t on_release(const void* site) override {
    return unpark_one(park_key(this, site));
  }

 private:
  Options opt_;
};

// Policy-adaptive pacing (ROADMAP): spin while the workload is polite,
// park once it demonstrably is not. Sessions report their telemetry via
// WaitPolicy::observe after every acquisition; when any observing
// session's contended ratio crosses `demote_ratio` (with at least
// `min_acquires` samples) the policy latches into parking mode for all
// its users.
class AdaptivePolicy final : public WaitPolicy {
 public:
  static constexpr const char* kName = "adaptive";

  struct Options {
    uint32_t spin_limit = 64;     // spin-mode: pause() budget per site
    uint32_t yield_limit = 128;   // spin-mode: then yield() forever
    double demote_ratio = 0.5;    // contended/acquires that flips to parking
    uint64_t min_acquires = 64;   // samples before the ratio is trusted
    std::chrono::nanoseconds min_park{std::chrono::microseconds(50)};
    std::chrono::nanoseconds max_park{std::chrono::microseconds(500)};
  };

  AdaptivePolicy() : opt_() {}
  explicit AdaptivePolicy(Options opt) : opt_(opt) {}

  void pause(const void* addr, uint32_t spins) override {
    if (spins <= opt_.spin_limit) {
      cpu_pause();
      return;
    }
    if (!parking_.load(std::memory_order_relaxed) ||
        spins <= opt_.yield_limit) {
      std::this_thread::yield();
      return;
    }
    detail::escalating_park(this, addr, spins - opt_.yield_limit,
                            opt_.min_park, opt_.max_park);
  }

  size_t on_release(const void* site) override {
    if (!parking_.load(std::memory_order_relaxed)) return 0;
    return unpark_one(park_key(this, site));
  }

  void observe(uint64_t acquires, uint64_t contended_acquires) override {
    if (parking_.load(std::memory_order_relaxed)) return;  // latched
    if (acquires < opt_.min_acquires) return;
    if (static_cast<double>(contended_acquires) >=
        opt_.demote_ratio * static_cast<double>(acquires)) {
      parking_.store(true, std::memory_order_relaxed);
    }
  }

  bool parking() const { return parking_.load(std::memory_order_relaxed); }

 private:
  Options opt_;
  std::atomic<bool> parking_{false};  // one-way spin -> park latch
};

}  // namespace rme::platform

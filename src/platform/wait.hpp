// Concrete WaitPolicy implementations (the policy interface itself lives
// in platform/platform.hpp next to Waiter, so lock headers need no new
// includes):
//
//   SpinPolicy       - pure busy-wait (cpu pause every iteration). The
//                      lowest-latency choice when every waiter owns a
//                      core; pathological when oversubscribed.
//   SpinYieldPolicy  - bounded spin burst then sched_yield (the library's
//                      historical Backoff pacing and the default when no
//                      policy is installed).
//   ParkPolicy       - spin, then yield, then timed parking in the
//                      caller's ParkingLot (platform/park.hpp) with
//                      exponentially escalating nap times. On the
//                      process-local lot parks are keyed by (policy,
//                      wait site); on a region FutexLot the key is the
//                      site address alone (cross-process stable). During
//                      a session verb the site is the lock address
//                      (platform.hpp Waiter), so on_release(site) -
//                      driven by rme::svc sessions - is a targeted
//                      single-waiter handoff (the known successor on a
//                      region lot, park order otherwise), and releases
//                      of one lock never wake waiters of another. The
//                      locks wake waiters by writing memory, not by
//                      syscall, so parks stay timed and every woken
//                      waiter re-checks its condition.
//   AdaptivePolicy   - starts as spin-then-yield and demotes itself to
//                      parking when the sessions driving it report a
//                      contended_acquires/acquires ratio above a
//                      threshold (WaitPolicy::observe). One-way: once the
//                      workload has proven oversubscribed, parking's
//                      freed cores beat spin's latency for the rest of
//                      the run.
//
// All per-wait-site iteration state lives in the caller's Waiter, so ONE
// policy instance may be shared by any number of sessions and threads -
// sharing is exactly what lets a release hand off to a rival session's
// parked waiter. (AdaptivePolicy's demotion latch is an atomic for the
// same reason.)
//
// Caveat for NON-session waits: a parking policy's cooperative wake
// requires the parker and the releaser to agree on the (policy, site)
// key, which sessions arrange by pinning the lock address per verb.
// A wait loop entered OUTSIDE any session verb while a parking policy
// is installed (e.g. a bare api::Guard acquire on a second lock) parks
// under its own spin-cell address, which no release targets - it still
// makes progress (parks are always timed) but pays up to max_park per
// wake. Acquire through a session when a parking policy is installed.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "platform/park.hpp"
#include "platform/platform.hpp"

namespace rme::platform {

namespace detail {

// The lot this wait participates in: the env's installed lot (a region
// FutexLot under an shm world), else the process-local condvar lot.
inline ParkingLot& resolve_lot(const ParkEnv& env) {
  return env.lot != nullptr ? *env.lot : CondvarLot::instance();
}

// The park key the parker and the releaser agree on. A SHARED lot keys
// by the site alone through the lot's own derivation (the region
// FutexLot keys by the site's REGION OFFSET, so processes attached at
// different bases still agree); the policy object is process-private and
// would break the cross-process agreement. The local lot keeps the
// historical (policy, site) mix so two policies sharing a site stay
// isolated.
inline uint64_t lot_key(const ParkingLot& lot, const void* policy,
                        const void* site) {
  return lot.shared() ? lot.key_of(site) : park_key(policy, site);
}

// The shared park-mode tail of the parking policies: escalate the nap
// geometrically from min_park to max_park, parked under the key the
// releaser's on_release(site) targets.
inline void escalating_park(const void* policy, const void* addr,
                            uint32_t naps_so_far,
                            std::chrono::nanoseconds min_park,
                            std::chrono::nanoseconds max_park,
                            const ParkEnv& env) {
  const uint32_t naps = std::min<uint32_t>(naps_so_far, 21);
  const auto nap = std::min(max_park, min_park * (1u << (naps - 1)));
  ParkingLot& lot = resolve_lot(env);
  lot.park_for(env.pid, lot_key(lot, policy, addr), nap);
}

}  // namespace detail

class SpinPolicy final : public WaitPolicy {
 public:
  static constexpr const char* kName = "spin";
  void pause(const void* /*addr*/, uint32_t /*spins*/,
             const ParkEnv& /*env*/) override {
    cpu_pause();
  }
};

class SpinYieldPolicy final : public WaitPolicy {
 public:
  static constexpr const char* kName = "spin_yield";
  explicit SpinYieldPolicy(uint32_t spin_limit = Waiter::kDefaultSpinLimit)
      : spin_limit_(spin_limit) {}
  void pause(const void* /*addr*/, uint32_t spins,
             const ParkEnv& /*env*/) override {
    if (spins <= spin_limit_) {
      cpu_pause();
    } else {
      std::this_thread::yield();
    }
  }

 private:
  uint32_t spin_limit_;
};

class ParkPolicy final : public WaitPolicy {
 public:
  static constexpr const char* kName = "park";

  struct Options {
    uint32_t spin_limit = 64;    // cpu_pause() for the first N iterations
    uint32_t yield_limit = 128;  // then yield() until this iteration
    std::chrono::nanoseconds min_park{std::chrono::microseconds(50)};
    std::chrono::nanoseconds max_park{std::chrono::microseconds(500)};
  };

  ParkPolicy() : opt_() {}
  explicit ParkPolicy(Options opt) : opt_(opt) {}

  void pause(const void* addr, uint32_t spins, const ParkEnv& env) override {
    if (spins <= opt_.spin_limit) {
      cpu_pause();
      return;
    }
    if (spins <= opt_.yield_limit) {
      std::this_thread::yield();
      return;
    }
    // The park key pairs the wait site (the lock address during a
    // session verb) with this policy on the local lot - or stands alone
    // on a region lot - so the releaser's unpark_one targets exactly the
    // waiters blocked on that lock.
    detail::escalating_park(this, addr, spins - opt_.yield_limit,
                            opt_.min_park, opt_.max_park, env);
  }

  // Fair handoff: grant the successor (region lot, when the releaser
  // knows it) or the oldest waiter parked on the site's key - at most
  // ONE waiter per release, matching the lock's own one-successor
  // handoff instead of the historical policy-wide thundering herd.
  size_t on_release(const void* site, const ParkEnv& env) override {
    ParkingLot& lot = detail::resolve_lot(env);
    return lot.unpark_one(detail::lot_key(lot, this, site), env.successor);
  }

 private:
  Options opt_;
};

// Policy-adaptive pacing (ROADMAP): spin while the workload is polite,
// park once it demonstrably is not. Sessions report their telemetry via
// WaitPolicy::observe after every acquisition; when any observing
// session's contended ratio crosses `demote_ratio` (with at least
// `min_acquires` samples) the policy latches into parking mode for all
// its users.
class AdaptivePolicy final : public WaitPolicy {
 public:
  static constexpr const char* kName = "adaptive";

  struct Options {
    uint32_t spin_limit = 64;     // spin-mode: pause() budget per site
    uint32_t yield_limit = 128;   // spin-mode: then yield() forever
    double demote_ratio = 0.5;    // contended/acquires that flips to parking
    uint64_t min_acquires = 64;   // samples before the ratio is trusted
    std::chrono::nanoseconds min_park{std::chrono::microseconds(50)};
    std::chrono::nanoseconds max_park{std::chrono::microseconds(500)};
  };

  AdaptivePolicy() : opt_() {}
  explicit AdaptivePolicy(Options opt) : opt_(opt) {}

  void pause(const void* addr, uint32_t spins, const ParkEnv& env) override {
    if (spins <= opt_.spin_limit) {
      cpu_pause();
      return;
    }
    if (!parking_.load(std::memory_order_relaxed) ||
        spins <= opt_.yield_limit) {
      std::this_thread::yield();
      return;
    }
    detail::escalating_park(this, addr, spins - opt_.yield_limit,
                            opt_.min_park, opt_.max_park, env);
  }

  size_t on_release(const void* site, const ParkEnv& env) override {
    if (!parking_.load(std::memory_order_relaxed)) return 0;
    ParkingLot& lot = detail::resolve_lot(env);
    return lot.unpark_one(detail::lot_key(lot, this, site), env.successor);
  }

  void observe(uint64_t acquires, uint64_t contended_acquires) override {
    if (parking_.load(std::memory_order_relaxed)) return;  // latched
    if (acquires < opt_.min_acquires) return;
    if (static_cast<double>(contended_acquires) >=
        opt_.demote_ratio * static_cast<double>(acquires)) {
      parking_.store(true, std::memory_order_relaxed);
    }
  }

  bool parking() const { return parking_.load(std::memory_order_relaxed); }

 private:
  Options opt_;
  std::atomic<bool> parking_{false};  // one-way spin -> park latch
};

}  // namespace rme::platform

// Concrete WaitPolicy implementations (the policy interface itself lives
// in platform/platform.hpp next to Waiter, so lock headers need no new
// includes):
//
//   SpinPolicy       - pure busy-wait (cpu pause every iteration). The
//                      lowest-latency choice when every waiter owns a
//                      core; pathological when oversubscribed.
//   SpinYieldPolicy  - bounded spin burst then sched_yield (the library's
//                      historical Backoff pacing and the default when no
//                      policy is installed).
//   ParkPolicy       - spin, then yield, then timed futex-style parking
//                      (platform/park.hpp) with exponentially escalating
//                      nap times. The locks wake waiters by writing
//                      memory, not by syscall, so parks are always timed
//                      and the waiter re-checks its condition on wake;
//                      on_release() (driven by rme::svc sessions) unparks
//                      this policy's sleepers early, which restores
//                      near-futex wake latency whenever the contending
//                      sessions share the policy instance.
//
// All three are stateless per wait-site (per-site iteration counts live
// in the caller's Waiter), so ONE policy instance may be shared by any
// number of sessions and threads - sharing is exactly what lets
// ParkPolicy::on_release wake rival waiters.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "platform/park.hpp"
#include "platform/platform.hpp"

namespace rme::platform {

class SpinPolicy final : public WaitPolicy {
 public:
  static constexpr const char* kName = "spin";
  void pause(const void* /*addr*/, uint32_t /*spins*/) override {
    cpu_pause();
  }
};

class SpinYieldPolicy final : public WaitPolicy {
 public:
  static constexpr const char* kName = "spin_yield";
  explicit SpinYieldPolicy(uint32_t spin_limit = Waiter::kDefaultSpinLimit)
      : spin_limit_(spin_limit) {}
  void pause(const void* /*addr*/, uint32_t spins) override {
    if (spins <= spin_limit_) {
      cpu_pause();
    } else {
      std::this_thread::yield();
    }
  }

 private:
  uint32_t spin_limit_;
};

class ParkPolicy final : public WaitPolicy {
 public:
  static constexpr const char* kName = "park";

  struct Options {
    uint32_t spin_limit = 64;    // cpu_pause() for the first N iterations
    uint32_t yield_limit = 128;  // then yield() until this iteration
    std::chrono::nanoseconds min_park{std::chrono::microseconds(50)};
    std::chrono::nanoseconds max_park{std::chrono::microseconds(500)};
  };

  ParkPolicy() : opt_() {}
  explicit ParkPolicy(Options opt) : opt_(opt) {}

  void pause(const void* /*addr*/, uint32_t spins) override {
    if (spins <= opt_.spin_limit) {
      cpu_pause();
      return;
    }
    if (spins <= opt_.yield_limit) {
      std::this_thread::yield();
      return;
    }
    // Escalate the nap geometrically from min_park to max_park. The park
    // key is the policy object itself: on_release() cannot know which
    // cell a rival waiter spins on (go-flags are per-process), so wakes
    // are policy-wide and every woken waiter re-checks its condition.
    const uint32_t naps = std::min<uint32_t>(spins - opt_.yield_limit, 21);
    const auto nap =
        std::min(opt_.max_park, opt_.min_park * (1u << (naps - 1)));
    park_for(this, nap);
  }

  void on_release() override { unpark_all(this); }

 private:
  Options opt_;
};

}  // namespace rme::platform

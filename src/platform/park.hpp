// Fair futex-style parking for wait loops, behind one ParkingLot
// interface with two implementations:
//
//   CondvarLot  the process-local lot (mutex + per-waiter condvar, keyed
//               FIFO). Heap-mode worlds use it; keys mix the policy and
//               the wait-site addresses, which are only meaningful inside
//               one process.
//
//   FutexLot    the REGION-RESIDENT lot (Linux): the wait words live in
//               the shm region's header (one WaitWord per logical pid),
//               so the park key - derived from a region address under the
//               fixed-address mapping contract - means the same thing in
//               every attached process, and a releaser ANYWHERE wakes the
//               exact successor with one futex(FUTEX_WAKE) syscall.
//               rme::shm::ShmWorld installs it into each Process context;
//               heap worlds never see it.
//
// The locks in this library wake waiters by WRITING MEMORY (go-flags,
// lock words) - the paper's model has no syscall channel - so a parked
// thread cannot rely on the releaser knowing its key. Parking is
// therefore always TIMED here, in both lots: a parker that is not
// explicitly granted wakes after its timeout and re-checks its
// condition. unpark_one() is the cooperative fast path the rme::svc
// session layer drives from its release hooks (WaitPolicy::on_release):
// one release grants exactly one waiter - the single-waiter handoff that
// replaces the historical unpark_all thundering herd. The futex lot
// additionally accepts a SUCCESSOR hint (the spin cell the releaser's CS
// signal just targeted): the hint resolves - via the per-pid flag-ring
// address ranges - to the next-in-queue pid, whose wait word is the one
// woken; without a hint (or when the successor is not parked) the grant
// falls back to FIFO ticket order among the key's parkers.
//
// WaitWord protocol (futex lot, ABA-safe across incarnations):
//
//   parker  gen <- word; seq <- ticket++; key <- park key (publish);
//           futex_wait(word, gen, timeout); key <- 0;
//           granted iff word != gen
//   waker   pick victim pid (successor hint, else min ticket with a
//           matching key); stamp wake_ns; word.fetch_add(1); futex_wake
//
// A waker that bumps between the parker's gen read and its futex_wait
// makes the wait return EAGAIN immediately - a correct grant. The word
// only ever advances, and a restarted incarnation of the pid has its
// word RESET by ShmWorld::claim under the registry's epoch fence, so a
// stale waker can at worst produce one spurious (timed-park-equivalent)
// wake, never a lost one. FUTEX_PRIVATE_FLAG is deliberately NOT used:
// the mapping is shared.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "obs/metrics.hpp"

#if defined(__linux__) && !defined(RME_NO_FUTEX)
#define RME_HAS_FUTEX 1
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#else
#define RME_HAS_FUTEX 0
#endif

namespace rme::platform {

// splitmix64 finaliser; the repo-wide pointer/key mixer.
constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Mix two pointers into one park key (used as (policy, wait site)).
inline uint64_t park_key(const void* a, const void* b) {
  return mix64(reinterpret_cast<uintptr_t>(a) ^
               mix64(reinterpret_cast<uintptr_t>(b)));
}

// Cross-process-stable key for a SHARED lot when no better derivation is
// available: the site address alone (policy objects are process-private
// and must stay out of the mix). Since the attach-anywhere contract
// (shm/region.hpp v5) the ADDRESS of a region site differs per process,
// so shared lots override ParkingLot::key_of to key by the site's REGION
// OFFSET instead; this absolute-address form remains only as the
// interface default (correct for any lot whose processes share one
// mapping base, e.g. fork-inherited or RME_SHM_FIXED worlds).
inline uint64_t shared_park_key(const void* site) {
  return mix64(reinterpret_cast<uintptr_t>(site));
}

// ---------------------------------------------------------------------------
// ParkingLot: the parking facility interface WaitPolicy implementations
// drive. `pid` is the caller's logical pid (the wait-word index in a
// region lot; the process-local lot ignores it).
// ---------------------------------------------------------------------------
class ParkingLot {
 public:
  virtual ~ParkingLot() = default;

  // Sleep until a grant arrives for `key` or until `timeout` elapses.
  // Returns true when explicitly granted. Always timed: an ungranted
  // parker wakes and re-checks its condition.
  virtual bool park_for(int pid, uint64_t key,
                        std::chrono::nanoseconds timeout) = 0;

  // Hand off to one waiter parked on exactly `key`: the resolved
  // `successor` when it is parked there (futex lot), else the oldest.
  // Returns the number granted (0 or 1).
  virtual size_t unpark_one(uint64_t key,
                            const void* successor = nullptr) = 0;

  // Grant every waiter parked on exactly `key` (shutdown paths).
  virtual size_t unpark_all(uint64_t key) = 0;

  // Wake EVERY parker regardless of key - the recovery path (epoch
  // takeover): whoever was waiting on state a dead process held must
  // re-check. Default: nothing (condvar parks are short-timed anyway).
  virtual void broadcast() {}

  virtual uint64_t parked_count() const = 0;
  // Waiters currently parked on exactly `key` (test/bench sequencing).
  virtual uint64_t parked_count(uint64_t key) = 0;

  // Cumulative explicit grants / park timeouts (monotone; compare
  // deltas). Region lots aggregate across every attached process.
  virtual uint64_t grants() const = 0;
  virtual uint64_t timeouts() const = 0;
  // Wake syscalls issued / summed waker-to-parker wake latency (futex
  // lot; 0 elsewhere).
  virtual uint64_t wakes() const { return 0; }
  virtual uint64_t wake_wait_ns() const { return 0; }

  // True when park keys must be meaningful in EVERY attached process: a
  // policy then derives its key via key_of(site) instead of mixing its
  // process-private this into the key.
  virtual bool shared() const { return false; }

  // The shared-key derivation for a wait site. Default: mix the absolute
  // address (valid when every process sees the site at one address).
  // Region lots override with the site's REGION OFFSET so parker and
  // waker agree on the key even when their attach bases differ.
  virtual uint64_t key_of(const void* site) const {
    return shared_park_key(site);
  }
};

// ---------------------------------------------------------------------------
// CondvarLot: the process-local lot - a static array of buckets, each a
// mutex guarding an intrusive FIFO of stack-allocated waiter nodes (one
// condvar per node, so a grant wakes precisely its target). Nodes record
// their exact key, so bucket collisions never cause cross-key grants,
// only mutex sharing. A global parked count makes unpark a single
// relaxed load when nobody sleeps.
// ---------------------------------------------------------------------------
class CondvarLot final : public ParkingLot {
 public:
  static CondvarLot& instance() {
    static CondvarLot lot;
    return lot;
  }

  bool park_for(int /*pid*/, uint64_t key,
                std::chrono::nanoseconds timeout) override {
    Bucket& b = bucket_for(key);
    Node me{key};
    std::unique_lock<std::mutex> lk(b.mu);
    enqueue(b, &me);
    parked_.fetch_add(1, std::memory_order_relaxed);
    me.cv.wait_for(lk, timeout, [&] { return me.granted; });
    if (!me.granted) {
      remove(b, &me);  // timed out while still queued
      timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
    return me.granted;
  }

  // Hand off to the oldest waiter parked on exactly `key` (the successor
  // hint needs cross-process address resolution only the region lot
  // has). Cheap when nobody is parked.
  size_t unpark_one(uint64_t key,
                    const void* /*successor*/ = nullptr) override {
    if (parked_.load(std::memory_order_relaxed) == 0) return 0;
    Bucket& b = bucket_for(key);
    std::lock_guard<std::mutex> lk(b.mu);
    for (Node* n = b.head; n != nullptr; n = n->next) {
      if (n->key != key) continue;
      remove(b, n);
      n->granted = true;
      n->cv.notify_one();
      grants_.fetch_add(1, std::memory_order_relaxed);
      return 1;
    }
    return 0;
  }

  size_t unpark_all(uint64_t key) override {
    if (parked_.load(std::memory_order_relaxed) == 0) return 0;
    Bucket& b = bucket_for(key);
    std::lock_guard<std::mutex> lk(b.mu);
    size_t granted = 0;
    Node* n = b.head;
    while (n != nullptr) {
      Node* next = n->next;
      if (n->key == key) {
        remove(b, n);
        n->granted = true;
        n->cv.notify_one();
        ++granted;
      }
      n = next;
    }
    grants_.fetch_add(granted, std::memory_order_relaxed);
    return granted;
  }

  uint64_t parked_count() const override {
    return parked_.load(std::memory_order_relaxed);
  }

  uint64_t parked_count(uint64_t key) override {
    Bucket& b = bucket_for(key);
    std::lock_guard<std::mutex> lk(b.mu);
    uint64_t n = 0;
    for (Node* w = b.head; w != nullptr; w = w->next) {
      if (w->key == key) ++n;
    }
    return n;
  }

  uint64_t grants() const override {
    return grants_.load(std::memory_order_relaxed);
  }
  uint64_t timeouts() const override {
    return timeouts_.load(std::memory_order_relaxed);
  }

 private:
  CondvarLot() = default;

  // Stack-allocated per-parked-thread node; lives inside park_for's
  // frame. Granters unlink it under the bucket mutex before notifying,
  // so the frame can never die while the node is still queued.
  struct Node {
    explicit Node(uint64_t k) : key(k) {}
    uint64_t key;
    Node* prev = nullptr;
    Node* next = nullptr;
    std::condition_variable cv;
    bool granted = false;
  };

  struct Bucket {
    std::mutex mu;
    Node* head = nullptr;  // oldest waiter (grant order)
    Node* tail = nullptr;
  };

  static void enqueue(Bucket& b, Node* n) {
    n->prev = b.tail;
    n->next = nullptr;
    if (b.tail != nullptr) {
      b.tail->next = n;
    } else {
      b.head = n;
    }
    b.tail = n;
  }

  static void remove(Bucket& b, Node* n) {
    if (n->prev != nullptr) {
      n->prev->next = n->next;
    } else {
      b.head = n->next;
    }
    if (n->next != nullptr) {
      n->next->prev = n->prev;
    } else {
      b.tail = n->prev;
    }
    n->prev = n->next = nullptr;
  }

  Bucket& bucket_for(uint64_t key) { return buckets_[mix64(key) % kBuckets]; }

  static constexpr size_t kBuckets = 64;
  Bucket buckets_[kBuckets];
  std::atomic<uint64_t> parked_{0};
  std::atomic<uint64_t> grants_{0};
  std::atomic<uint64_t> timeouts_{0};
};

// ---------------------------------------------------------------------------
// WaitWord / WaitArena: the region-resident wait state, embedded in the
// shm RegionHeader (always, on every platform - layout is part of the
// region ABI; only the futex syscalls are Linux-gated). One WaitWord per
// logical pid: a pid parks on its OWN word only, so there is never more
// than one waiter per futex word and FUTEX_WAKE(1) is exact.
// ---------------------------------------------------------------------------
struct WaitWord {
  std::atomic<uint32_t> word;  // generation: the futex word; bumped to wake
  uint32_t pad_;
  std::atomic<uint64_t> key;      // park key while parked (0 = not parked)
  std::atomic<uint64_t> seq;      // FIFO ticket taken at park time
  std::atomic<uint64_t> wake_ns;  // waker's monotonic stamp (latency probe)
};

struct WaitArena {
  static constexpr int kSlots = 64;  // >= shm::kMaxProcs (static_asserted)
  WaitWord words[kSlots];
  std::atomic<uint64_t> ticket;         // FIFO ticket source
  std::atomic<uint64_t> grants;         // explicit grants, all processes
  std::atomic<uint64_t> timeouts;       // ungranted (timed-out) parks
  std::atomic<uint64_t> wakes;          // FUTEX_WAKE syscalls issued
  std::atomic<uint64_t> grant_wait_ns;  // sum of bump->wakeup latencies
};

#if RME_HAS_FUTEX

// ---------------------------------------------------------------------------
// FutexLot: the shared lot over a WaitArena. One instance per attached
// process per region (owned by ShmWorld), all of them views of the same
// arena. bind() happens lazily once the region header is complete.
// ---------------------------------------------------------------------------
class FutexLot final : public ParkingLot {
 public:
  FutexLot() = default;

  // `ring_off`/`ring_bytes_per_pid` describe the per-pid flag-ring slot
  // arrays (region-offset + byte span): the successor hint a releaser
  // passes is a spin-cell address inside the NEXT-IN-QUEUE pid's array,
  // which is how an address resolves to a wait-word index.
  void bind(WaitArena* arena, const char* region_base, const int32_t* nprocs,
            const uint64_t* ring_off, size_t ring_bytes_per_pid) {
    arena_ = arena;
    base_ = region_base;
    nprocs_ = nprocs;
    ring_off_ = ring_off;
    ring_bytes_ = ring_bytes_per_pid;
  }
  bool bound() const { return arena_ != nullptr; }

  // Optional telemetry feed (rme::obs): consumed wake stamps land in the
  // parker's per-pid wake-latency histogram. The parker owns its pid's
  // registry slot, so the single-writer row discipline holds.
  void bind_metrics(obs::MetricsArena* metrics) { metrics_ = metrics; }

  bool park_for(int pid, uint64_t key,
                std::chrono::nanoseconds timeout) override {
    WaitWord& w = word(pid);
    // Gen first, THEN publish the key: a waker that sees the key can only
    // bump a generation we have already observed, so its wake is never
    // lost - futex_wait returns EAGAIN if the bump won the race.
    const uint32_t gen = w.word.load(std::memory_order_acquire);
    w.seq.store(arena_->ticket.fetch_add(1, std::memory_order_relaxed),
                std::memory_order_relaxed);
    w.key.store(key, std::memory_order_seq_cst);
    struct timespec ts;
    const auto secs = std::chrono::duration_cast<std::chrono::seconds>(timeout);
    ts.tv_sec = static_cast<time_t>(secs.count());
    ts.tv_nsec = static_cast<long>((timeout - secs).count());
    // Shared futex (no FUTEX_PRIVATE_FLAG): the waker may be another
    // process. EAGAIN/EINTR fall through to the word re-check.
    futex(&w.word, FUTEX_WAIT, gen, &ts);
    w.key.store(0, std::memory_order_seq_cst);
    const bool granted = w.word.load(std::memory_order_acquire) != gen;
    if (granted) {
      // Consume the stamp (exchange, not load: a stale stamp left behind
      // would charge the NEXT park's wake with this one's latency).
      const uint64_t stamp = w.wake_ns.exchange(0, std::memory_order_relaxed);
      if (stamp != 0) {
        const uint64_t waited = now_ns() - stamp;
        arena_->grant_wait_ns.fetch_add(waited, std::memory_order_relaxed);
        if (metrics_ != nullptr) metrics_->rows[pid].on_wake(waited);
      }
      arena_->grants.fetch_add(1, std::memory_order_relaxed);
    } else {
      arena_->timeouts.fetch_add(1, std::memory_order_relaxed);
    }
    return granted;
  }

  size_t unpark_one(uint64_t key, const void* successor = nullptr) override {
    int victim = -1;
    if (successor != nullptr) {
      // Successor-aware handoff: the releaser's CS signal targeted this
      // spin cell; its owner pid is the exact next queue occupant.
      const int pid = resolve(successor);
      if (pid >= 0 &&
          word(pid).key.load(std::memory_order_seq_cst) == key) {
        victim = pid;
      }
      // Resolved but not parked: the successor is spinning and needs no
      // wake - but someone ELSE may be parked behind it on this key
      // (batch releases, shard sharing), so fall through to FIFO.
    }
    if (victim < 0) {
      uint64_t best = 0;
      for (int p = 0; p < procs(); ++p) {
        if (word(p).key.load(std::memory_order_seq_cst) != key) continue;
        const uint64_t s = word(p).seq.load(std::memory_order_relaxed);
        if (victim < 0 || s < best) {
          victim = p;
          best = s;
        }
      }
    }
    if (victim < 0) return 0;
    wake(victim);
    return 1;
  }

  size_t unpark_all(uint64_t key) override {
    size_t granted = 0;
    for (int p = 0; p < procs(); ++p) {
      if (word(p).key.load(std::memory_order_seq_cst) != key) continue;
      wake(p);
      ++granted;
    }
    return granted;
  }

  // Recovery wake: bump and wake EVERY parked word. An epoch takeover
  // runs this so waiters blocked on state the dead incarnation held
  // re-check instead of sleeping out their full timeout.
  void broadcast() override {
    for (int p = 0; p < procs(); ++p) {
      if (word(p).key.load(std::memory_order_seq_cst) != 0) wake(p);
    }
  }

  // New-incarnation reset, called by ShmWorld::claim UNDER slot
  // ownership (the registry's epoch fence orders it against every rival
  // incarnation): a pid killed while parked leaves its key published
  // forever; the reset retires that stale parked state.
  void reset(int pid) {
    WaitWord& w = word(pid);
    w.key.store(0, std::memory_order_seq_cst);
    w.wake_ns.store(0, std::memory_order_relaxed);
  }

  uint64_t parked_count() const override {
    uint64_t n = 0;
    for (int p = 0; p < procs(); ++p) {
      if (word(p).key.load(std::memory_order_seq_cst) != 0) ++n;
    }
    return n;
  }
  uint64_t parked_count(uint64_t key) override {
    uint64_t n = 0;
    for (int p = 0; p < procs(); ++p) {
      if (word(p).key.load(std::memory_order_seq_cst) == key) ++n;
    }
    return n;
  }

  uint64_t grants() const override {
    return arena_->grants.load(std::memory_order_relaxed);
  }
  uint64_t timeouts() const override {
    return arena_->timeouts.load(std::memory_order_relaxed);
  }
  uint64_t wakes() const override {
    return arena_->wakes.load(std::memory_order_relaxed);
  }
  uint64_t wake_wait_ns() const override {
    return arena_->grant_wait_ns.load(std::memory_order_relaxed);
  }

  bool shared() const override { return true; }

 private:
  WaitWord& word(int pid) const { return arena_->words[pid]; }
  int procs() const {
    const int n = static_cast<int>(*nprocs_);
    return n < WaitArena::kSlots ? n : WaitArena::kSlots;
  }

  static long futex(std::atomic<uint32_t>* word, int op, uint32_t val,
                    const struct timespec* ts) {
    return ::syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), op, val,
                     ts, nullptr, 0);
  }

  static uint64_t now_ns() {
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
  }

  void wake(int pid) {
    WaitWord& w = word(pid);
    w.wake_ns.store(now_ns(), std::memory_order_relaxed);
    w.word.fetch_add(1, std::memory_order_seq_cst);
    arena_->wakes.fetch_add(1, std::memory_order_relaxed);
    futex(&w.word, FUTEX_WAKE, 1, nullptr);  // exact: one waiter per word
  }

  // Position-independent park key: the site's region OFFSET, mixed. A
  // parker and a waker attached at different bases compute the same key
  // for the same region site - the property the mismatched-bases park
  // tests and the bench_shm handoff=futex arm pin down.
  uint64_t key_of(const void* site) const override {
    return mix64(static_cast<uint64_t>(static_cast<const char*>(site) -
                                       base_));
  }

  // Spin-cell address -> owning logical pid, via the per-pid flag-ring
  // spans. -1 when the address is not a known ring cell (heap site, or
  // the hint raced a ring reconfiguration): callers fall back to FIFO.
  int resolve(const void* successor) const {
    const char* p = static_cast<const char*>(successor);
    if (p < base_) return -1;
    const uint64_t off = static_cast<uint64_t>(p - base_);
    for (int pid = 0; pid < procs(); ++pid) {
      const uint64_t lo = ring_off_[pid];
      if (lo != 0 && off >= lo && off < lo + ring_bytes_) return pid;
    }
    return -1;
  }

  WaitArena* arena_ = nullptr;
  obs::MetricsArena* metrics_ = nullptr;
  const char* base_ = nullptr;
  const int32_t* nprocs_ = nullptr;
  const uint64_t* ring_off_ = nullptr;
  size_t ring_bytes_ = 0;
};

#endif  // RME_HAS_FUTEX

// Process-local conveniences over the condvar lot (historical surface;
// region-lot users go through the installed ParkingLot*).
inline bool park_for(uint64_t key, std::chrono::nanoseconds timeout) {
  return CondvarLot::instance().park_for(0, key, timeout);
}

inline size_t unpark_one(uint64_t key) {
  return CondvarLot::instance().unpark_one(key);
}

inline size_t unpark_all(uint64_t key) {
  return CondvarLot::instance().unpark_all(key);
}

}  // namespace rme::platform

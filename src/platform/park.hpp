// Fair futex-style parking for wait loops: park(key) puts the calling OS
// thread to sleep until it is granted a wake - unpark_one(key) hands off
// to the OLDEST waiter parked on exactly that key - or until a timeout,
// without any shared-memory traffic in the lock algorithms themselves.
//
// The locks in this library wake waiters by WRITING MEMORY (go-flags,
// lock words) - the paper's model has no syscall channel - so a parked
// thread cannot rely on the releaser knowing its key. Parking is
// therefore always TIMED here: a parker that is not explicitly granted
// wakes after its timeout and re-checks its condition. unpark_one() is
// the cooperative fast path the rme::svc session layer drives from its
// release hooks (WaitPolicy::on_release): one release grants exactly one
// waiter, in park order - the single-waiter handoff that replaces the
// historical unpark_all thundering herd.
//
// Implementation: a static array of buckets, each a mutex guarding an
// intrusive FIFO of stack-allocated waiter nodes (one condvar per node,
// so a grant wakes precisely its target). Keys are 64-bit values (the
// svc layer mixes (policy, lock address) into one - see
// platform/wait.hpp); nodes record their exact key, so bucket collisions
// never cause cross-key grants, only mutex sharing. A global parked
// count makes unpark a single relaxed load when nobody sleeps.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace rme::platform {

// splitmix64 finaliser; the repo-wide pointer/key mixer.
constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Mix two pointers into one park key (used as (policy, wait site)).
inline uint64_t park_key(const void* a, const void* b) {
  return mix64(reinterpret_cast<uintptr_t>(a) ^
               mix64(reinterpret_cast<uintptr_t>(b)));
}

class ParkingLot {
 public:
  static ParkingLot& instance() {
    static ParkingLot lot;
    return lot;
  }

  // Sleep until a grant arrives for `key` or until `timeout` elapses.
  // Returns true when explicitly granted (never spuriously: a grant is a
  // targeted unpark_one/unpark_all decision taken under the bucket lock).
  bool park_for(uint64_t key, std::chrono::nanoseconds timeout) {
    Bucket& b = bucket_for(key);
    Node me{key};
    std::unique_lock<std::mutex> lk(b.mu);
    enqueue(b, &me);
    parked_.fetch_add(1, std::memory_order_relaxed);
    me.cv.wait_for(lk, timeout, [&] { return me.granted; });
    if (!me.granted) {
      remove(b, &me);  // timed out while still queued
      timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
    return me.granted;
  }

  // Hand off to the oldest waiter parked on exactly `key`. Returns the
  // number of waiters granted (0 or 1). Cheap when nobody is parked.
  size_t unpark_one(uint64_t key) {
    if (parked_.load(std::memory_order_relaxed) == 0) return 0;
    Bucket& b = bucket_for(key);
    std::lock_guard<std::mutex> lk(b.mu);
    for (Node* n = b.head; n != nullptr; n = n->next) {
      if (n->key != key) continue;
      remove(b, n);
      n->granted = true;
      n->cv.notify_one();
      grants_.fetch_add(1, std::memory_order_relaxed);
      return 1;
    }
    return 0;
  }

  // Grant every waiter parked on exactly `key` (recovery/shutdown paths;
  // the fair handoff path is unpark_one). Returns the number granted.
  size_t unpark_all(uint64_t key) {
    if (parked_.load(std::memory_order_relaxed) == 0) return 0;
    Bucket& b = bucket_for(key);
    std::lock_guard<std::mutex> lk(b.mu);
    size_t granted = 0;
    Node* n = b.head;
    while (n != nullptr) {
      Node* next = n->next;
      if (n->key == key) {
        remove(b, n);
        n->granted = true;
        n->cv.notify_one();
        ++granted;
      }
      n = next;
    }
    grants_.fetch_add(granted, std::memory_order_relaxed);
    return granted;
  }

  uint64_t parked_count() const {
    return parked_.load(std::memory_order_relaxed);
  }

  // Waiters currently parked on exactly `key` (test sequencing helper).
  uint64_t parked_count(uint64_t key) {
    Bucket& b = bucket_for(key);
    std::lock_guard<std::mutex> lk(b.mu);
    uint64_t n = 0;
    for (Node* w = b.head; w != nullptr; w = w->next) {
      if (w->key == key) ++n;
    }
    return n;
  }

  // Cumulative explicit grants / park timeouts (monotone; tests compare
  // deltas, since the lot is a process-wide singleton).
  uint64_t grants() const { return grants_.load(std::memory_order_relaxed); }
  uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }

 private:
  ParkingLot() = default;

  // Stack-allocated per-parked-thread node; lives inside park_for's
  // frame. Granters unlink it under the bucket mutex before notifying,
  // so the frame can never die while the node is still queued.
  struct Node {
    explicit Node(uint64_t k) : key(k) {}
    uint64_t key;
    Node* prev = nullptr;
    Node* next = nullptr;
    std::condition_variable cv;
    bool granted = false;
  };

  struct Bucket {
    std::mutex mu;
    Node* head = nullptr;  // oldest waiter (grant order)
    Node* tail = nullptr;
  };

  static void enqueue(Bucket& b, Node* n) {
    n->prev = b.tail;
    n->next = nullptr;
    if (b.tail != nullptr) {
      b.tail->next = n;
    } else {
      b.head = n;
    }
    b.tail = n;
  }

  static void remove(Bucket& b, Node* n) {
    if (n->prev != nullptr) {
      n->prev->next = n->next;
    } else {
      b.head = n->next;
    }
    if (n->next != nullptr) {
      n->next->prev = n->prev;
    } else {
      b.tail = n->prev;
    }
    n->prev = n->next = nullptr;
  }

  Bucket& bucket_for(uint64_t key) { return buckets_[mix64(key) % kBuckets]; }

  static constexpr size_t kBuckets = 64;
  Bucket buckets_[kBuckets];
  std::atomic<uint64_t> parked_{0};
  std::atomic<uint64_t> grants_{0};
  std::atomic<uint64_t> timeouts_{0};
};

inline bool park_for(uint64_t key, std::chrono::nanoseconds timeout) {
  return ParkingLot::instance().park_for(key, timeout);
}

inline size_t unpark_one(uint64_t key) {
  return ParkingLot::instance().unpark_one(key);
}

inline size_t unpark_all(uint64_t key) {
  return ParkingLot::instance().unpark_all(key);
}

}  // namespace rme::platform

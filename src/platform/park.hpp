// Futex-style parking for wait loops: park(key) puts the calling OS
// thread to sleep until unpark_all(key) or a timeout, without any
// shared-memory traffic in the lock algorithms themselves.
//
// The locks in this library wake waiters by WRITING MEMORY (go-flags,
// lock words) - the paper's model has no syscall channel - so a parked
// thread cannot rely on the releaser knowing its key. Parking is
// therefore always TIMED here: a parker that is not explicitly unparked
// wakes after its timeout and re-checks its condition. unpark_all() is
// the cooperative fast path the rme::svc session layer drives from its
// release hooks (WaitPolicy::on_release).
//
// Implementation: a static array of buckets, each a mutex + condvar +
// epoch counter, keyed by pointer hash. Hash collisions and batch wakes
// only cause spurious wakeups; every woken waiter re-evaluates its wait
// condition, so correctness never depends on precision. A global parked
// count makes unpark_all() a single relaxed load when nobody sleeps.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace rme::platform {

class ParkingLot {
 public:
  static ParkingLot& instance() {
    static ParkingLot lot;
    return lot;
  }

  // Sleep until unpark_all(key) (or a colliding key's wake) or until
  // `timeout` elapses. Returns true when explicitly woken.
  bool park_for(const void* key, std::chrono::nanoseconds timeout) {
    Bucket& b = bucket_for(key);
    std::unique_lock<std::mutex> lk(b.mu);
    const uint64_t epoch = b.epoch;
    parked_.fetch_add(1, std::memory_order_relaxed);
    const bool woken =
        b.cv.wait_for(lk, timeout, [&] { return b.epoch != epoch; });
    parked_.fetch_sub(1, std::memory_order_relaxed);
    return woken;
  }

  // Wake every thread parked on `key` (and, harmlessly, on colliding
  // keys). Cheap when nobody is parked anywhere.
  void unpark_all(const void* key) {
    if (parked_.load(std::memory_order_relaxed) == 0) return;
    Bucket& b = bucket_for(key);
    {
      std::lock_guard<std::mutex> lk(b.mu);
      ++b.epoch;
    }
    b.cv.notify_all();
  }

  uint64_t parked_count() const {
    return parked_.load(std::memory_order_relaxed);
  }

 private:
  ParkingLot() = default;

  struct Bucket {
    std::mutex mu;
    std::condition_variable cv;
    uint64_t epoch = 0;  // bumped by every unpark_all on this bucket
  };

  Bucket& bucket_for(const void* key) {
    uint64_t x = reinterpret_cast<uintptr_t>(key);
    x += 0x9e3779b97f4a7c15ull;  // splitmix64 finaliser
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return buckets_[(x ^ (x >> 31)) % kBuckets];
  }

  static constexpr size_t kBuckets = 64;
  Bucket buckets_[kBuckets];
  std::atomic<uint64_t> parked_{0};
};

inline bool park_for(const void* key, std::chrono::nanoseconds timeout) {
  return ParkingLot::instance().park_for(key, timeout);
}

inline void unpark_all(const void* key) {
  ParkingLot::instance().unpark_all(key);
}

}  // namespace rme::platform

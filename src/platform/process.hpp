// Process handle: the per-process bundle every lock API takes.
//
// It pairs the platform execution context (pid, RMR counters, scheduler and
// crash hooks) with the process's go-flag ring - the pool of local-spin
// cells living in this process's DSM partition, from which every wait()
// draws its spin variable (paper Figure 2, Line 5). Keeping the ring with
// the process (not with the lock) is what makes spinning local on DSM.
#pragma once

#include "nvm/flag_ring.hpp"
#include "platform/platform.hpp"

namespace rme::platform {

template <class P>
struct Process {
  typename P::Context ctx;
  nvm::FlagRing<P> ring;

  Process() = default;

  // `ring_slots` bounds how many wait() publications can be outstanding
  // before a slot is reused; tags make reuse safe regardless, so this is a
  // performance knob only.
  void attach(typename P::Env& env, int pid, size_t ring_slots = 64) {
    ctx = typename P::Context{};
    set_pid(ctx, pid, env);
    ring.attach(env, pid, ring_slots);
  }

  // Bind to an EXISTING ring slot array instead of allocating one - the
  // shm worlds' path, where each pid's ring lives in the region and a
  // restarted process must re-enter the same slots (tag counters continue;
  // see nvm/flag_ring.hpp on why re-initialising them would be unsound).
  void attach_adopted(typename P::Env& env, int pid,
                      typename nvm::FlagRing<P>::Slot* slots, size_t n) {
    ctx = typename P::Context{};
    set_pid(ctx, pid, env);
    ring.adopt(slots, n);
  }

 private:
  static void set_pid(typename Real::Context& c, int pid, Real::Env&) {
    c.pid = pid;
  }
  static void set_pid(typename Counted::Context& c, int pid,
                      Counted::Env& env) {
    c.pid = pid;
    c.env = &env;
  }
};

}  // namespace rme::platform

// Platform policies.
//
// All algorithms in this library (Signal, R2Lock, RLock tournament, the
// JJJ RmeLock, the arbitration tree, the baselines) are templated on a
// Platform `P` supplying:
//
//   P::Env                      - per-world memory environment (cost model)
//   P::Context                  - per-process execution context (pid, RMR
//                                 counters, scheduler & crash-plan hooks)
//   P::Atomic<T>                - an atomic cell; every op takes a Context&
//   P::pause()                  - spin-loop relaxation hint
//
// Two platforms are provided:
//
//   platform::Real     std::atomic with explicit memory orders and an empty
//                      Env; zero overhead. Used for wall-clock benches and
//                      as the production configuration.
//
//   platform::Counted  routes every operation through an rmr::Model (CC or
//                      DSM) for exact RMR accounting, and through optional
//                      sim::Scheduler / sim::CrashPlan hooks for
//                      deterministic interleaving and crash-step injection.
//
// Memory-order discipline (applies to both platforms; Counted forwards the
// order to the underlying std::atomic so real-thread counted runs are still
// correct):
//   * FAS (exchange) on queue tails: acq_rel - it both publishes our node
//     (release) and acquires the predecessor's published fields (acquire).
//   * publication stores (Pred, Node[p], Bit): release
//   * reads of published fields / spins: acquire
//   * Dekker-style handshakes (Signal Bit vs GoAddr, R2Lock flag vs turn):
//     seq_cst, flagged explicitly at the call sites that need it.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>

#include "platform/arena.hpp"
#include "rmr/model.hpp"
#include "sim/crash_plan.hpp"
#include "sim/scheduler.hpp"
#include "util/assert.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace rme::obs {
struct PidRow;  // obs/metrics.hpp: region-resident telemetry row
}

namespace rme::platform {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

class ParkingLot;  // platform/park.hpp

// The parking environment a Waiter (or a release hook) hands its
// WaitPolicy alongside the site address: who is waiting (the logical
// pid - the wait-word index in a region lot), WHERE parks live (the
// installed lot; null means the process-local condvar lot), and - on the
// release side - the releaser's known SUCCESSOR (the spin cell its CS
// signal just targeted), which a shared lot resolves to the exact
// next-in-queue pid's wait word.
struct ParkEnv {
  int pid = 0;
  ParkingLot* lot = nullptr;
  const void* successor = nullptr;
};

// ---------------------------------------------------------------------------
// WaitPolicy: the injectable pacing strategy behind every wait loop.
//
// Every spin site in the library routes through a Waiter (below) instead
// of hand-rolled pause loops. A Waiter consults the per-process context's
// installed WaitPolicy; when none is installed it falls back to the
// historical spin-then-yield pacing. The rme::svc session layer installs
// policies (platform/wait.hpp: SpinPolicy, SpinYieldPolicy, ParkPolicy)
// per session, so callers choose who waits and how without touching any
// lock's hot path. Pacing is never a shared-memory operation: RMR
// accounting and the deterministic simulator are unaffected.
// ---------------------------------------------------------------------------
class WaitPolicy {
 public:
  virtual ~WaitPolicy() = default;
  // One pacing step of a wait loop. `addr` identifies the awaited
  // location (a parking/diagnostic key, never dereferenced); `spins` is
  // the iteration count at this wait site so far (1 on the first pause);
  // `env` carries the caller's pid and installed parking lot. During an
  // rme::svc session verb the Waiter overrides `addr` with the session's
  // wait site (the lock address), so parkers and the releaser agree on
  // one key per site (per (policy, site) pair on the process-local lot).
  virtual void pause(const void* addr, uint32_t spins, const ParkEnv& env) = 0;
  // Hint that the caller just released the lock at `site`: a parking
  // policy hands off to ONE waiter parked on that site's key here - the
  // fair single-waiter handoff. `env.successor`, when set, names the
  // releaser's exact next queue occupant (see ParkEnv) so a shared lot
  // wakes precisely that pid. Returns how many waiters were granted
  // (the rme::svc layer books this as SessionStats::handoff_rmrs, the
  // wake-chain cost attribution). Default: no-op, nobody woken.
  virtual size_t on_release(const void* site, const ParkEnv& env) {
    (void)site;
    (void)env;
    return 0;
  }
  // Telemetry feedback from the session layer after each acquisition:
  // total acquires and contended acquires of the observing session. An
  // adaptive policy (platform/wait.hpp: AdaptivePolicy) demotes itself
  // from spinning to parking on this signal. Default: ignore.
  virtual void observe(uint64_t acquires, uint64_t contended_acquires) {
    (void)acquires;
    (void)contended_acquires;
  }
};

// Pins the context's wait site - the park-key half a releaser can
// address - for the current scope, restoring the previous site on any
// exit (including crash unwinds). The rme::svc session layer pins the
// lock address per verb; shard-granular locks (core::RecoverableLockTable)
// re-pin the SHARD lock around each per-shard wait so a shard's release
// wakes that shard's waiters, not the oldest waiter of any shard.
template <class Ctx>
class WaitSiteScope {
 public:
  WaitSiteScope(Ctx& ctx, const void* site) : ctx_(ctx), prev_(ctx.wait_site) {
    ctx_.wait_site = site;
  }
  ~WaitSiteScope() { ctx_.wait_site = prev_; }
  WaitSiteScope(const WaitSiteScope&) = delete;
  WaitSiteScope& operator=(const WaitSiteScope&) = delete;

 private:
  Ctx& ctx_;
  const void* prev_;
};

// Per-wait-site helper (one per wait loop, like the old Backoff): counts
// iterations, credits the context's wait-cycle telemetry, and delegates
// pacing to the installed policy. Under the deterministic simulator the
// scheduler itself serialises progress at every shared-memory op, so the
// policy is bypassed - parking the single runnable OS thread would
// deadlock the baton.
class Waiter {
 public:
  template <class Ctx>
  void pause(Ctx& ctx, const void* addr = nullptr) {
    ++ctx.wait_cycles;
    if constexpr (requires { ctx.sched; }) {
      if (ctx.sched != nullptr) return;  // sim scheduler drives interleaving
    }
    ++spins_;
    if (WaitPolicy* p = ctx.wait_policy; p != nullptr) {
      // Inside a session verb the session pins the wait site (the lock
      // address) in the context, so every pause of the verb - whichever
      // cell it actually spins on - parks under the key the releaser's
      // on_release(site) will target.
      if (ctx.wait_site != nullptr) addr = ctx.wait_site;
      p->pause(addr, spins_, ParkEnv{ctx.pid, ctx.park_lot, nullptr});
      return;
    }
    // Default pacing: a bounded burst of pause() (the low-latency path
    // when the awaited writer runs on another core), then yield() so
    // oversubscribed hosts still make progress at OS-scheduler speed.
    if (spins_ <= kDefaultSpinLimit) {
      cpu_pause();
    } else {
      std::this_thread::yield();
    }
  }
  void reset() { spins_ = 0; }
  uint32_t spins() const { return spins_; }

  static constexpr uint32_t kDefaultSpinLimit = 128;

 private:
  uint32_t spins_ = 0;
};

// ---------------------------------------------------------------------------
// Real platform
// ---------------------------------------------------------------------------
struct Real {
  static constexpr bool kCounted = false;

  struct Env {
    // When valid, shared lock state (nvm::Seq-backed arrays, QSBR nodes)
    // is placed in this arena instead of the heap - the rme::shm worlds
    // bind it to their mmap-backed region. Default: invalid, heap.
    Arena arena{};
  };

  struct Context {
    int pid = 0;
    WaitPolicy* wait_policy = nullptr;  // installed by rme::svc sessions
    const void* wait_site = nullptr;    // pinned per-verb park key (svc)
    ParkingLot* park_lot = nullptr;     // region lot (shm worlds); null = local
    const void* wake_hint = nullptr;    // spin cell the last CS signal targeted
    obs::PidRow* metrics = nullptr;     // this pid's region telemetry row
                                        // (shm worlds); null = no telemetry
    uint64_t wait_cycles = 0;           // Waiter pauses on behalf of this pid
    explicit Context(int p = 0) : pid(p) {}
    // Hook point; nothing to do on the real platform.
    void before_op(rmr::Op) {}
    void account(rmr::Op, bool) {}
  };

  template <class T>
  class Atomic {
   public:
    Atomic() : v_{} {}
    explicit Atomic(T init) : v_{init} {}

    // Register this cell with the environment; `owner` is the DSM partition
    // (rmr::kNoOwner = global memory). No-op on the real platform.
    void attach(Env&, int /*owner*/) {}

    T load(Context& c, std::memory_order mo = std::memory_order_acquire) const {
      c.before_op(rmr::Op::kRead);
      return v_.load(mo);
    }
    void store(Context& c, T val, std::memory_order mo = std::memory_order_release) {
      c.before_op(rmr::Op::kWrite);
      v_.store(val, mo);
    }
    T exchange(Context& c, T val, std::memory_order mo = std::memory_order_acq_rel) {
      c.before_op(rmr::Op::kFas);
      return v_.exchange(val, mo);
    }
    // Fetch-and-increment; provided for baseline locks only (the core
    // algorithm uses FAS exclusively - experiment E8 audits this).
    T fetch_add(Context& c, T delta, std::memory_order mo = std::memory_order_acq_rel)
      requires std::is_integral_v<T>
    {
      c.before_op(rmr::Op::kFai);
      return v_.fetch_add(delta, mo);
    }
    // CAS; baselines only (MCS release path).
    bool compare_exchange(Context& c, T& expected, T desired,
                          std::memory_order mo = std::memory_order_acq_rel) {
      c.before_op(rmr::Op::kCas);
      return v_.compare_exchange_strong(expected, desired, mo,
                                        std::memory_order_acquire);
    }
    // Raw initialisation outside any process (world setup); not an RMR.
    void init(T val) { v_.store(val, std::memory_order_relaxed); }

   private:
    std::atomic<T> v_;
  };

  static void pause() { cpu_pause(); }
};

// ---------------------------------------------------------------------------
// Counted platform
// ---------------------------------------------------------------------------
// Template parameter purely as a tag so CC and DSM instantiations are
// distinct types (tests/benches instantiate both in one binary).
struct Counted {
  static constexpr bool kCounted = true;

  struct Env {
    rmr::Model* model = nullptr;  // required before any attach()
    // Uniform with Real::Env so arena-aware containers compile for both
    // platforms; counted (simulated) worlds never install one.
    Arena arena{};
  };

  struct Context {
    int pid = 0;
    Env* env = nullptr;
    rmr::Counters counters;
    sim::Scheduler* sched = nullptr;   // optional deterministic interleaving
    sim::CrashPlan* crash = nullptr;   // optional crash-step injection
    uint64_t step_index = 0;           // per-process op counter (monotone)
    WaitPolicy* wait_policy = nullptr;  // installed by rme::svc sessions
    const void* wait_site = nullptr;    // pinned per-verb park key (svc)
    ParkingLot* park_lot = nullptr;     // uniform with Real; never installed
    const void* wake_hint = nullptr;    // spin cell the last CS signal targeted
    obs::PidRow* metrics = nullptr;     // uniform with Real; never installed
    uint64_t wait_cycles = 0;           // Waiter pauses on behalf of this pid

    Context() = default;
    Context(int p, Env* e) : pid(p), env(e) {}

    // Called before each shared-memory operation: maybe crash (a crash step
    // replaces the op), then maybe yield to the deterministic scheduler.
    void before_op(rmr::Op op) {
      const uint64_t s = step_index++;
      if (crash != nullptr && crash->should_crash(pid, s, op)) {
        if (env != nullptr && env->model != nullptr) env->model->on_crash(pid);
        throw sim::ProcessCrashed{};
      }
      if (sched != nullptr) {
        sched->yield(pid);
        if (sched->stopping()) throw sim::RunTornDown{};
      }
    }

    void account(rmr::Op op, bool remote) {
      counters.note_op(op);
      if (remote) ++counters.rmrs;
    }
  };

  template <class T>
  class Atomic {
   public:
    Atomic() : v_{} {}
    explicit Atomic(T init) : v_{init} {}

    void attach(Env& env, int owner) {
      RME_ASSERT(env.model != nullptr, "Counted::attach before Env.model set");
      model_ = env.model;
      cell_ = model_->register_cell(owner);
      attached_ = true;
    }

    T load(Context& c, std::memory_order mo = std::memory_order_acquire) const {
      c.before_op(rmr::Op::kRead);
      c.account(rmr::Op::kRead, charge(c, rmr::Op::kRead));
      return v_.load(mo);
    }
    void store(Context& c, T val, std::memory_order mo = std::memory_order_release) {
      c.before_op(rmr::Op::kWrite);
      c.account(rmr::Op::kWrite, charge(c, rmr::Op::kWrite));
      v_.store(val, mo);
    }
    T exchange(Context& c, T val, std::memory_order mo = std::memory_order_acq_rel) {
      c.before_op(rmr::Op::kFas);
      c.account(rmr::Op::kFas, charge(c, rmr::Op::kFas));
      return v_.exchange(val, mo);
    }
    T fetch_add(Context& c, T delta, std::memory_order mo = std::memory_order_acq_rel)
      requires std::is_integral_v<T>
    {
      c.before_op(rmr::Op::kFai);
      c.account(rmr::Op::kFai, charge(c, rmr::Op::kFai));
      return v_.fetch_add(delta, mo);
    }
    bool compare_exchange(Context& c, T& expected, T desired,
                          std::memory_order mo = std::memory_order_acq_rel) {
      c.before_op(rmr::Op::kCas);
      c.account(rmr::Op::kCas, charge(c, rmr::Op::kCas));
      return v_.compare_exchange_strong(expected, desired, mo,
                                        std::memory_order_acquire);
    }
    void init(T val) { v_.store(val, std::memory_order_relaxed); }

   private:
    bool charge(Context& c, rmr::Op op) const {
      RME_DCHECK(attached_, "Counted::Atomic used before attach()");
      if (!attached_) return true;
      return model_->charge(c.pid, cell_, op);
    }

    std::atomic<T> v_;
    rmr::Model* model_ = nullptr;
    rmr::CellId cell_ = 0;
    bool attached_ = false;
  };

  static void pause() { cpu_pause(); }
};

}  // namespace rme::platform

file(REMOVE_RECURSE
  "CMakeFiles/bench_csr_steps.dir/bench/bench_csr_steps.cpp.o"
  "CMakeFiles/bench_csr_steps.dir/bench/bench_csr_steps.cpp.o.d"
  "bench/bench_csr_steps"
  "bench/bench_csr_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_csr_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_signal.dir/bench/bench_signal.cpp.o"
  "CMakeFiles/bench_signal.dir/bench/bench_signal.cpp.o.d"
  "bench/bench_signal"
  "bench/bench_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

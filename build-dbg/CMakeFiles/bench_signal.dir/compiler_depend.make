# Empty compiler generated dependencies file for bench_signal.
# This may be replaced when dependencies are built.

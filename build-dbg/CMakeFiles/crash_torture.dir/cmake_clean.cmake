file(REMOVE_RECURSE
  "CMakeFiles/crash_torture.dir/examples/crash_torture.cpp.o"
  "CMakeFiles/crash_torture.dir/examples/crash_torture.cpp.o.d"
  "examples/crash_torture"
  "examples/crash_torture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_torture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for crash_torture.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_rme_lock.dir/tests/test_rme_lock.cpp.o"
  "CMakeFiles/test_rme_lock.dir/tests/test_rme_lock.cpp.o.d"
  "test_rme_lock"
  "test_rme_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rme_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_rlock_variants.dir/tests/test_rlock_variants.cpp.o"
  "CMakeFiles/test_rlock_variants.dir/tests/test_rlock_variants.cpp.o.d"
  "test_rlock_variants"
  "test_rlock_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rlock_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

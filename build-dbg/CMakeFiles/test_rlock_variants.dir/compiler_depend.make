# Empty compiler generated dependencies file for test_rlock_variants.
# This may be replaced when dependencies are built.

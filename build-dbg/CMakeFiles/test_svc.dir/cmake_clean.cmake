file(REMOVE_RECURSE
  "CMakeFiles/test_svc.dir/tests/test_svc.cpp.o"
  "CMakeFiles/test_svc.dir/tests/test_svc.cpp.o.d"
  "test_svc"
  "test_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

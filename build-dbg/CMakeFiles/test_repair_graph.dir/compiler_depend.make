# Empty compiler generated dependencies file for test_repair_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_repair_graph.dir/tests/test_repair_graph.cpp.o"
  "CMakeFiles/test_repair_graph.dir/tests/test_repair_graph.cpp.o.d"
  "test_repair_graph"
  "test_repair_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repair_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/shm_sessions.dir/examples/shm_sessions.cpp.o"
  "CMakeFiles/shm_sessions.dir/examples/shm_sessions.cpp.o.d"
  "examples/shm_sessions"
  "examples/shm_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_lockd.dir/tests/test_lockd.cpp.o"
  "CMakeFiles/test_lockd.dir/tests/test_lockd.cpp.o.d"
  "test_lockd"
  "test_lockd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lockd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_lock_table.dir/bench/bench_lock_table.cpp.o"
  "CMakeFiles/bench_lock_table.dir/bench/bench_lock_table.cpp.o.d"
  "bench/bench_lock_table"
  "bench/bench_lock_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lock_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_shm.dir/bench/bench_shm.cpp.o"
  "CMakeFiles/bench_shm.dir/bench/bench_shm.cpp.o.d"
  "bench/bench_shm"
  "bench/bench_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

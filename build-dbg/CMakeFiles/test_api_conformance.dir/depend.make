# Empty dependencies file for test_api_conformance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_checker_teeth.dir/tests/test_checker_teeth.cpp.o"
  "CMakeFiles/test_checker_teeth.dir/tests/test_checker_teeth.cpp.o.d"
  "test_checker_teeth"
  "test_checker_teeth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checker_teeth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_realthreads.dir/tests/test_realthreads.cpp.o"
  "CMakeFiles/test_realthreads.dir/tests/test_realthreads.cpp.o.d"
  "test_realthreads"
  "test_realthreads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_realthreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_realthreads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_instruction_mix.dir/bench/bench_instruction_mix.cpp.o"
  "CMakeFiles/bench_instruction_mix.dir/bench/bench_instruction_mix.cpp.o.d"
  "bench/bench_instruction_mix"
  "bench/bench_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

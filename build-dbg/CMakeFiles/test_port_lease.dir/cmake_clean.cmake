file(REMOVE_RECURSE
  "CMakeFiles/test_port_lease.dir/tests/test_port_lease.cpp.o"
  "CMakeFiles/test_port_lease.dir/tests/test_port_lease.cpp.o.d"
  "test_port_lease"
  "test_port_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_port_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for recoverable_kv_log.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_exit_steps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/shm_worker.dir/tools/shm_worker.cpp.o"
  "CMakeFiles/shm_worker.dir/tools/shm_worker.cpp.o.d"
  "tools/shm_worker"
  "tools/shm_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

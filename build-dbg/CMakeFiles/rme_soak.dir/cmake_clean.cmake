file(REMOVE_RECURSE
  "CMakeFiles/rme_soak.dir/tools/rme_soak.cpp.o"
  "CMakeFiles/rme_soak.dir/tools/rme_soak.cpp.o.d"
  "tools/rme_soak"
  "tools/rme_soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rme_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rme_soak.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_rlock.dir/tests/test_rlock.cpp.o"
  "CMakeFiles/test_rlock.dir/tests/test_rlock.cpp.o.d"
  "test_rlock"
  "test_rlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

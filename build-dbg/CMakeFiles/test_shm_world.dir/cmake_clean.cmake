file(REMOVE_RECURSE
  "CMakeFiles/test_shm_world.dir/tests/test_shm_world.cpp.o"
  "CMakeFiles/test_shm_world.dir/tests/test_shm_world.cpp.o.d"
  "test_shm_world"
  "test_shm_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shm_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

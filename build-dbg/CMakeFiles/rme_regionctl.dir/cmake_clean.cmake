file(REMOVE_RECURSE
  "CMakeFiles/rme_regionctl.dir/tools/rme_regionctl.cpp.o"
  "CMakeFiles/rme_regionctl.dir/tools/rme_regionctl.cpp.o.d"
  "tools/rme_regionctl"
  "tools/rme_regionctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rme_regionctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_shm_fork.dir/tests/test_shm_fork.cpp.o"
  "CMakeFiles/test_shm_fork.dir/tests/test_shm_fork.cpp.o.d"
  "test_shm_fork"
  "test_shm_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shm_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rmr_audit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_footprint.dir/bench/bench_cache_footprint.cpp.o"
  "CMakeFiles/bench_cache_footprint.dir/bench/bench_cache_footprint.cpp.o.d"
  "bench/bench_cache_footprint"
  "bench/bench_cache_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_crash_rmr.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_crash_matrix.
# This may be replaced when dependencies are built.
